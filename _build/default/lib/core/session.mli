(** The controller's OSPF adjacency.

    The real Fibbing controller joins the IGP as one more router: in the
    demo it is "connected to R3" and floods its forged LSAs through that
    adjacency. This module models the control channel: the OSPF neighbor
    state machine (Down → Init → 2-Way → ExStart → Exchange → Loading →
    Full), hello keepalives with dead-interval expiry, and wire-encoded
    LSA injection that is only accepted once the adjacency is Full.

    The failure semantics matter most: if the controller loses its
    adjacency (dead interval passes without a hello), every lie it
    injected is purged from the network — Fibbing fails back to plain
    IGP routing rather than wedging stale lies, exactly the safety
    property the architecture advertises. *)

type state = Down | Init | TwoWay | ExStart | Exchange | Loading | Full

val pp_state : Format.formatter -> state -> unit

type t

val create :
  ?hello_interval:float ->
  ?dead_interval:float ->
  Igp.Network.t ->
  attachment:Netgraph.Graph.node ->
  t
(** An adjacency to [attachment] (the demo's R3). Defaults follow OSPF:
    hello every 10 s, dead after 40 s. Requires
    [dead_interval > hello_interval]. *)

val state : t -> state

val attachment : t -> Netgraph.Graph.node

val tick : t -> now:float -> unit
(** Drive the session's timers to [now]: sends hellos, advances the
    handshake one stage per exchanged hello, and declares the neighbor
    dead — purging every LSA injected over this session — when the peer
    has been silent past the dead interval. [now] must not go
    backwards. *)

val establish : t -> now:float -> unit
(** Run ticks (at hello granularity) until Full — the impatient
    variant used by tests and setup code. *)

val peer_hello : t -> now:float -> unit
(** Record a hello from the peer. [tick] generates these implicitly
    while [peer_reachable] is true; tests can drive them manually. *)

val set_peer_reachable : t -> bool -> unit
(** Simulate losing (or regaining) the adjacency's physical path.
    While unreachable, no peer hellos arrive and the dead interval
    eventually fires. *)

val inject_wire : t -> bytes -> (unit, string) result
(** Decode and install a fake LSA received over the session. Rejected
    unless the adjacency is Full. *)

val inject : t -> Igp.Lsa.fake -> (unit, string) result
(** Encode through the wire codec, then [inject_wire] — the full path a
    real controller exercises. *)

val injected : t -> string list
(** Fake ids currently installed through this session. *)

val hellos_sent : t -> int

val last_state_change : t -> float
