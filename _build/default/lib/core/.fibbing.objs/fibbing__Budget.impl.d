lib/core/budget.ml: Array Kit List Netgraph Printf Requirements
