lib/core/splitting.ml: Array Kit List Option Requirements
