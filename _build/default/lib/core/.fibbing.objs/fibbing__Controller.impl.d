lib/core/controller.ml: Augmentation Format Hashtbl Igp List Netgraph Netsim Option Printf Requirements Splitting String Transient
