lib/core/splitting.mli: Netgraph Requirements
