lib/core/merger.mli: Augmentation Igp Requirements
