lib/core/verify.ml: Format Igp List Netgraph
