lib/core/augmentation.mli: Igp Netgraph Requirements
