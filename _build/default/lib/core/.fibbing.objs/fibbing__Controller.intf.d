lib/core/controller.mli: Igp Netgraph Netsim Requirements
