lib/core/transient.mli: Augmentation Igp
