lib/core/session.mli: Format Igp Netgraph
