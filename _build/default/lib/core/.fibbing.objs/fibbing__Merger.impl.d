lib/core/merger.ml: Augmentation Igp List Requirements String Verify
