lib/core/augmentation.ml: Format Hashtbl Igp List Netgraph Option Printf Requirements Result Splitting Verify
