lib/core/session.ml: Format Igp List Netgraph
