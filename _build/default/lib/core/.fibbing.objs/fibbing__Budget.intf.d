lib/core/budget.mli: Netgraph Requirements
