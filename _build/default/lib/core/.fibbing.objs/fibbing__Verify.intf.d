lib/core/verify.mli: Format Igp Netgraph
