lib/core/audit.ml: Format Igp List Netgraph Option String
