lib/core/audit.mli: Format Igp Netgraph
