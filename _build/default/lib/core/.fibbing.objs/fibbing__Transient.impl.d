lib/core/transient.ml: Array Augmentation Igp List Netgraph Printf Queue String
