lib/core/requirements.ml: Format Hashtbl Igp List Netgraph String
