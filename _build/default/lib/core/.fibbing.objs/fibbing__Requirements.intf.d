lib/core/requirements.mli: Format Igp Netgraph
