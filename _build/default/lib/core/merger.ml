let verifies net (reqs : Requirements.t) (plan : Augmentation.plan) ~baseline =
  let scratch = Igp.Network.clone net in
  Augmentation.apply scratch plan;
  (Verify.check scratch ~prefix:reqs.prefix ~expected:plan.expected ~baseline)
    .Verify.ok

let minimize net (reqs : Requirements.t) (plan : Augmentation.plan) =
  let baseline = Verify.snapshot net reqs.prefix in
  if not (verifies net reqs plan ~baseline) then plan
  else begin
    (* Try to drop fakes one at a time, most expensive lies first (they
       are the most likely to be redundant with cheaper ones). *)
    let order =
      List.sort
        (fun (a : Igp.Lsa.fake) (b : Igp.Lsa.fake) ->
          compare (Igp.Lsa.total_cost b) (Igp.Lsa.total_cost a))
        plan.fakes
    in
    let drop_one kept candidate =
      let remaining =
        List.filter
          (fun (f : Igp.Lsa.fake) ->
            not (String.equal f.fake_id candidate.Igp.Lsa.fake_id))
          kept
      in
      let trial = { plan with fakes = remaining } in
      if verifies net reqs trial ~baseline then remaining else kept
    in
    let fakes = List.fold_left drop_one plan.fakes order in
    { plan with fakes }
  end

let saved ~(before : Augmentation.plan) ~(after : Augmentation.plan) =
  List.length before.fakes - List.length after.fakes
