(** Introspection of installed lies.

    An operator inheriting a fibbed network asks: {e what are these fake
    LSAs doing?} [run] reconstructs the answer from the network state
    alone — no access to the plans that created it: per lied-to router
    and prefix, the realized FIB weights and traffic fractions, whether
    each lie extends the IGP's paths (equal cost) or overrides them
    (undercutting), and what the whole lie costs in LSDB memory (wire
    bytes replicated in every router). The audit is the inverse of
    [Augmentation]: compiling, applying and auditing returns the plan's
    expected weights. *)

type mode = Extends | Overrides

type router_audit = {
  router : Netgraph.Graph.node;
  prefix : Igp.Lsa.prefix;
  weights : (Netgraph.Graph.node * int) list;  (** Realized FIB weights. *)
  fractions : (Netgraph.Graph.node * float) list;
  fakes : Igp.Lsa.fake list;  (** The lies attached at this router. *)
  mode : mode;
      (** [Extends] when the lies sit at the router's honest SPF cost
          (they add paths); [Overrides] when they undercut it. *)
  honest_distance : int;
      (** The router's SPF cost with every fake removed. *)
  lied_distance : int;  (** Its current SPF cost. *)
}

type t = {
  per_router : router_audit list;  (** Sorted by (prefix, router). *)
  total_fakes : int;
  wire_bytes : int;
      (** Encoded size of all fake LSAs — the LSDB overhead replicated
          in every router of the domain. *)
  prefixes : Igp.Lsa.prefix list;  (** Prefixes with at least one lie. *)
}

val run : Igp.Network.t -> t
(** Read-only: the network is cloned internally to compute honest
    distances. *)

val pp : names:(Netgraph.Graph.node -> string) -> Format.formatter -> t -> unit
