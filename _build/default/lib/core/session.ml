type state = Down | Init | TwoWay | ExStart | Exchange | Loading | Full

let pp_state fmt s =
  Format.pp_print_string fmt
    (match s with
    | Down -> "Down"
    | Init -> "Init"
    | TwoWay -> "2-Way"
    | ExStart -> "ExStart"
    | Exchange -> "Exchange"
    | Loading -> "Loading"
    | Full -> "Full")

let next_state = function
  | Down -> Init
  | Init -> TwoWay
  | TwoWay -> ExStart
  | ExStart -> Exchange
  | Exchange -> Loading
  | Loading -> Full
  | Full -> Full

type t = {
  net : Igp.Network.t;
  attachment : Netgraph.Graph.node;
  hello_interval : float;
  dead_interval : float;
  mutable state : state;
  mutable clock : float;
  mutable last_hello_sent : float;
  mutable last_hello_heard : float;
  mutable peer_reachable : bool;
  mutable injected : string list; (* newest first *)
  mutable hellos_sent : int;
  mutable last_state_change : float;
}

let create ?(hello_interval = 10.) ?(dead_interval = 40.) net ~attachment =
  if hello_interval <= 0. then invalid_arg "Session.create: hello interval";
  if dead_interval <= hello_interval then
    invalid_arg "Session.create: dead interval must exceed the hello interval";
  ignore (Netgraph.Graph.name (Igp.Network.graph net) attachment);
  {
    net;
    attachment;
    hello_interval;
    dead_interval;
    state = Down;
    clock = 0.;
    last_hello_sent = neg_infinity;
    last_hello_heard = neg_infinity;
    peer_reachable = true;
    injected = [];
    hellos_sent = 0;
    last_state_change = 0.;
  }

let state t = t.state

let attachment t = t.attachment

let injected t = List.rev t.injected

let hellos_sent t = t.hellos_sent

let last_state_change t = t.last_state_change

let transition t ~now state =
  if t.state <> state then begin
    t.state <- state;
    t.last_state_change <- now
  end

(* The neighbor died: OSPF flushes the adjacency, and the LSAs the
   controller originated age out of every LSDB. *)
let collapse t ~now =
  List.iter
    (fun fake_id ->
      match Igp.Network.retract_fake t.net ~fake_id with
      | () -> ()
      | exception Not_found -> () (* already withdrawn by other means *))
    t.injected;
  t.injected <- [];
  transition t ~now Down

let peer_hello t ~now =
  t.last_hello_heard <- now;
  (* Hearing the neighbor advances the handshake one stage. *)
  if t.state <> Full then transition t ~now (next_state t.state)

let tick t ~now =
  if now < t.clock -. 1e-9 then invalid_arg "Session.tick: time went backwards";
  t.clock <- now;
  (* Send our hello when due. *)
  if now -. t.last_hello_sent >= t.hello_interval -. 1e-9 then begin
    t.last_hello_sent <- now;
    t.hellos_sent <- t.hellos_sent + 1;
    (* A reachable peer answers in the same hello period. *)
    if t.peer_reachable then peer_hello t ~now
  end;
  (* Dead-interval expiry. *)
  if
    t.state <> Down
    && now -. t.last_hello_heard >= t.dead_interval -. 1e-9
  then collapse t ~now

let establish t ~now =
  let start = max now t.clock in
  (* Seven states: at most 7 hello exchanges take us to Full. *)
  let steps = 8 in
  for i = 0 to steps do
    if t.state <> Full then
      tick t ~now:(start +. (float_of_int i *. t.hello_interval))
  done

let set_peer_reachable t reachable = t.peer_reachable <- reachable

let inject_wire t buf =
  if t.state <> Full then
    Error
      (Format.asprintf "adjacency is %a, not Full: flooding refused" pp_state
         t.state)
  else begin
    match Igp.Codec.decode buf with
    | Error reason -> Error reason
    | Ok { lsa = Igp.Lsa.Fake fake; _ } ->
      (match Igp.Network.inject_fake t.net fake with
      | () ->
        if not (List.mem fake.fake_id t.injected) then
          t.injected <- fake.fake_id :: t.injected;
        Ok ()
      | exception Invalid_argument reason -> Error reason)
    | Ok _ -> Error "only fake LSAs may be flooded over the session"
  end

let inject t fake =
  inject_wire t (Igp.Codec.encode { Igp.Codec.lsa = Igp.Lsa.Fake fake; sequence = 1 })
