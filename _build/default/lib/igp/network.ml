module Graph = Netgraph.Graph

type t = {
  graph : Graph.t;
  lsdb : Lsdb.t;
  mutable control : Flooding.cost;
  fib_cache : (int * Graph.node * Lsa.prefix, Fib.t option) Hashtbl.t;
}

let create graph =
  {
    graph;
    lsdb = Lsdb.create graph;
    control = Flooding.zero;
    fib_cache = Hashtbl.create 64;
  }

let clone t =
  let graph = Graph.copy t.graph in
  let lsdb = Lsdb.create graph in
  List.iter
    (fun (prefix, origin, cost) -> Lsdb.announce_prefix lsdb prefix ~origin ~cost)
    (Lsdb.prefixes t.lsdb);
  List.iter (fun fake -> Lsdb.install_fake lsdb fake) (Lsdb.fakes t.lsdb);
  { graph; lsdb; control = Flooding.zero; fib_cache = Hashtbl.create 64 }

let graph t = t.graph

let lsdb t = t.lsdb

let announce_prefix t prefix ~origin ~cost =
  Lsdb.announce_prefix t.lsdb prefix ~origin ~cost

let account t ~origin =
  t.control <- Flooding.add t.control (Flooding.flood t.graph ~origin)

let inject_fake t fake =
  Lsdb.install_fake t.lsdb fake;
  account t ~origin:fake.Lsa.attachment

let retract_fake t ~fake_id =
  let fake =
    List.find (fun (f : Lsa.fake) -> String.equal f.fake_id fake_id)
      (Lsdb.fakes t.lsdb)
  in
  Lsdb.retract_fake t.lsdb ~fake_id;
  account t ~origin:fake.Lsa.attachment

let inject_fake_wire t buf =
  match Codec.decode buf with
  | Error reason -> Error reason
  | Ok { lsa = Lsa.Fake fake; _ } ->
    (match inject_fake t fake with
    | () -> Ok ()
    | exception Invalid_argument reason -> Error reason)
  | Ok { lsa = Lsa.Router _ | Lsa.Prefix _; _ } ->
    Error "wire packet is not a fake LSA"

let router_lsa t ~origin =
  Lsa.Router { origin; links = Graph.succ t.graph origin }

let retract_all_fakes t =
  List.iter (fun (f : Lsa.fake) -> retract_fake t ~fake_id:f.fake_id)
    (Lsdb.fakes t.lsdb)

let fakes t = Lsdb.fakes t.lsdb

let fib t ~router prefix =
  let key = (Lsdb.version t.lsdb, router, prefix) in
  match Hashtbl.find_opt t.fib_cache key with
  | Some fib -> fib
  | None ->
    let fib = Spf.compute_prefix (Lsdb.view t.lsdb) ~router prefix in
    if Hashtbl.length t.fib_cache > 4096 then Hashtbl.reset t.fib_cache;
    Hashtbl.add t.fib_cache key fib;
    fib

let fibs t prefix =
  List.filter_map
    (fun router ->
      Option.map (fun f -> (router, f)) (fib t ~router prefix))
    (Graph.nodes t.graph)

let distance t ~router prefix =
  Option.map (fun (f : Fib.t) -> f.distance) (fib t ~router prefix)

let next_hops t ~router prefix =
  match fib t ~router prefix with None -> [] | Some f -> Fib.next_hops f

let set_weight t u v ~weight =
  Graph.set_weight t.graph u v ~weight;
  Lsdb.touch ~origin:u t.lsdb;
  account t ~origin:u

let control_cost t = t.control

let refresh_cost t ~period ~duration =
  if period <= 0. then invalid_arg "Network.refresh_cost: period";
  let cycles = int_of_float (duration /. period) in
  List.fold_left
    (fun acc (fake : Lsa.fake) ->
      let once = Flooding.flood t.graph ~origin:fake.attachment in
      Flooding.add acc
        { Flooding.messages = once.messages * cycles; rounds = once.rounds })
    Flooding.zero (Lsdb.fakes t.lsdb)

let reset_control_cost t = t.control <- Flooding.zero

let routers t = Graph.nodes t.graph
