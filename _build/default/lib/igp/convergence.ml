module Graph = Netgraph.Graph

type timing = { flood_per_hop : float; spf_delay : float; jitter : float }

let default_timing = { flood_per_hop = 0.01; spf_delay = 0.15; jitter = 0.02 }

let installation_schedule timing g ~origin =
  let n = Graph.node_count g in
  let depth = Array.make n (-1) in
  depth.(origin) <- 0;
  let queue = Queue.create () in
  Queue.push origin queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Graph.iter_succ g u (fun v _ ->
        if depth.(v) < 0 then begin
          depth.(v) <- depth.(u) + 1;
          Queue.push v queue
        end)
  done;
  Graph.nodes g
  |> List.filter_map (fun router ->
         if depth.(router) < 0 then None
         else
           Some
             ( router,
               (float_of_int depth.(router) *. timing.flood_per_hop)
               +. timing.spf_delay
               +. (float_of_int (router mod 7) *. timing.jitter) ))
  |> List.sort (fun (_, a) (_, b) -> compare a b)

type verdict =
  | Safe
  | Loop of Graph.node list
  | Blackhole of Graph.node

let forwarding_verdict ~nodes ~fib =
  let forwarding router =
    match fib router with
    | Some f when not f.Fib.local -> Fib.next_hops f
    | Some _ | None -> []
  in
  (* Kahn over the forwarding edges. *)
  let indegree = Hashtbl.create 16 in
  let bump v = Hashtbl.replace indegree v (1 + Option.value ~default:0 (Hashtbl.find_opt indegree v)) in
  List.iter (fun router -> List.iter bump (forwarding router)) nodes;
  let queue = Queue.create () in
  List.iter
    (fun router -> if not (Hashtbl.mem indegree router) then Queue.push router queue)
    nodes;
  let processed = ref 0 in
  while not (Queue.is_empty queue) do
    let router = Queue.pop queue in
    incr processed;
    List.iter
      (fun nh ->
        let d = Hashtbl.find indegree nh - 1 in
        if d = 0 then begin
          Hashtbl.remove indegree nh;
          Queue.push nh queue
        end
        else Hashtbl.replace indegree nh d)
      (forwarding router)
  done;
  if !processed < List.length nodes then
    Loop (List.filter (fun router -> Hashtbl.mem indegree router) nodes)
  else begin
    let routed router = fib router <> None in
    match
      List.find_opt
        (fun router ->
          routed router
          && List.exists (fun nh -> not (routed nh)) (forwarding router))
        nodes
    with
    | Some router -> Blackhole router
    | None -> Safe
  end

type report = {
  states : int;
  unsafe_states : int;
  unsafe_window : float;
  convergence_time : float;
  first_problem : (float * string) option;
}

let describe_verdict g = function
  | Safe -> "safe"
  | Loop routers ->
    Printf.sprintf "loop through {%s}"
      (String.concat ", " (List.map (Graph.name g) routers))
  | Blackhole router -> Printf.sprintf "blackhole at %s" (Graph.name g router)

let analyze ?(timing = default_timing) ~before ~after ~origin ~prefix () =
  let g = Network.graph after in
  let nodes = Graph.nodes g in
  let old_fib = Hashtbl.create 16 and new_fib = Hashtbl.create 16 in
  List.iter
    (fun router ->
      Hashtbl.replace old_fib router (Network.fib before ~router prefix);
      Hashtbl.replace new_fib router (Network.fib after ~router prefix))
    nodes;
  let changed router = Hashtbl.find old_fib router <> Hashtbl.find new_fib router in
  let schedule =
    List.filter (fun (router, _) -> changed router)
      (installation_schedule timing g ~origin)
  in
  let applied = Hashtbl.create 16 in
  let mixed router =
    if Hashtbl.mem applied router then Hashtbl.find new_fib router
    else Hashtbl.find old_fib router
  in
  let states = List.length schedule in
  let unsafe_states = ref 0 in
  let unsafe_window = ref 0. in
  let first_problem = ref None in
  let convergence_time =
    match List.rev schedule with (_, t) :: _ -> t | [] -> 0.
  in
  let rec walk = function
    | [] -> ()
    | (router, time) :: rest ->
      Hashtbl.replace applied router ();
      (match forwarding_verdict ~nodes ~fib:mixed with
      | Safe -> ()
      | problem ->
        incr unsafe_states;
        let until =
          match rest with (_, next) :: _ -> next | [] -> convergence_time
        in
        unsafe_window := !unsafe_window +. (until -. time);
        if !first_problem = None then
          first_problem := Some (time, describe_verdict g problem));
      walk rest
  in
  walk schedule;
  {
    states;
    unsafe_states = !unsafe_states;
    unsafe_window = !unsafe_window;
    convergence_time;
    first_problem = !first_problem;
  }
