(** Link-state database shared by all routers.

    A single LSDB instance models the (converged) flooded state of the
    IGP domain: router LSAs are derived from the physical topology graph;
    prefix and fake LSAs are installed explicitly. Each change bumps a
    version and a per-LSA sequence number, mirroring OSPF supersession.

    [view] materializes the augmented routing graph every router computes
    SPF on: the physical graph, plus one stub node per fake LSA, plus one
    virtual sink node per prefix with an incoming edge from every
    announcer (real egress at its announced cost, fakes at theirs). *)

type t

type view = {
  graph : Netgraph.Graph.t;
      (** Augmented graph. Node identifiers [< real_nodes] coincide with
          the physical graph's. *)
  real_nodes : int;
  sink_of_prefix : (Lsa.prefix * Netgraph.Graph.node) list;
  fake_of_node : (Netgraph.Graph.node * Lsa.fake) list;
}

val create : Netgraph.Graph.t -> t
(** The LSDB reads the physical graph lazily: weight changes made to the
    graph afterwards are picked up after a call to [touch]. *)

val base_graph : t -> Netgraph.Graph.t

val announce_prefix : t -> Lsa.prefix -> origin:Netgraph.Graph.node -> cost:int -> unit
(** Install (or supersede) the real announcement of a prefix. A prefix may
    be announced by several origins (anycast); each (origin, prefix) pair
    is one LSA. *)

val install_fake : t -> Lsa.fake -> unit
(** Inject a fake LSA; supersedes any previous fake with the same
    [fake_id]. Raises [Invalid_argument] if the forwarding address is not
    a physical neighbor of the attachment router, if the announced prefix
    is unknown, or if costs are not positive. *)

val retract_fake : t -> fake_id:string -> unit
(** Raises [Not_found] if no such fake is installed. *)

val retract_all_fakes : t -> unit

val fakes : t -> Lsa.fake list
(** Currently installed fakes, in installation order. *)

val fake_count : t -> int

val prefixes : t -> (Lsa.prefix * Netgraph.Graph.node * int) list
(** Real prefix announcements [(prefix, origin, cost)]. *)

val prefix_list : t -> Lsa.prefix list
(** Distinct announced prefixes. *)

val sequence : t -> key:string -> int option
(** Current sequence number of the LSA with this [Lsa.key]; [None] if
    never installed. Sequence numbers survive retraction (as in OSPF,
    where a purged LSA's sequence keeps increasing). *)

val version : t -> int
(** Bumped on every change; cheap to poll. *)

val last_origin : t -> Netgraph.Graph.node option
(** The router that originated the most recent change (the attachment
    of an installed/retracted fake, the origin of a prefix announcement,
    or the node passed to [touch]); used by reconvergence models to
    anchor the flooding schedule. *)

val touch : ?origin:Netgraph.Graph.node -> t -> unit
(** Signal that the physical graph was mutated externally (e.g. a weight
    change at [origin]), invalidating cached views. *)

val view : t -> view
(** Cached per [version]. *)
