module Graph = Netgraph.Graph

type view = {
  graph : Graph.t;
  real_nodes : int;
  sink_of_prefix : (Lsa.prefix * Graph.node) list;
  fake_of_node : (Graph.node * Lsa.fake) list;
}

type t = {
  base : Graph.t;
  mutable announcements : (Lsa.prefix * Graph.node * int) list; (* newest last *)
  mutable fake_list : Lsa.fake list; (* newest last *)
  sequences : (string, int) Hashtbl.t;
  mutable version : int;
  mutable last_origin : Graph.node option;
  mutable cached_view : (int * view) option;
}

let create base =
  {
    base;
    announcements = [];
    fake_list = [];
    sequences = Hashtbl.create 32;
    version = 0;
    last_origin = None;
    cached_view = None;
  }

let base_graph t = t.base

let bump t key =
  let seq = Option.value ~default:0 (Hashtbl.find_opt t.sequences key) in
  Hashtbl.replace t.sequences key (seq + 1);
  t.version <- t.version + 1

let announce_prefix t prefix ~origin ~cost =
  if cost < 0 then invalid_arg "Lsdb.announce_prefix: negative cost";
  ignore (Graph.name t.base origin);
  t.last_origin <- Some origin;
  t.announcements <-
    List.filter (fun (p, o, _) -> not (String.equal p prefix && o = origin)) t.announcements
    @ [ (prefix, origin, cost) ];
  bump t (Lsa.key (Prefix { origin; prefix; cost }))

let prefix_known t prefix =
  List.exists (fun (p, _, _) -> String.equal p prefix) t.announcements

let install_fake t (fake : Lsa.fake) =
  if fake.attachment_cost <= 0 then
    invalid_arg "Lsdb.install_fake: attachment cost must be positive";
  if fake.announced_cost < 0 then
    invalid_arg "Lsdb.install_fake: negative announced cost";
  if not (Graph.has_edge t.base fake.attachment fake.forwarding) then
    invalid_arg
      (Printf.sprintf "Lsdb.install_fake: %s's forwarding address is not a neighbor of its attachment"
         fake.fake_id);
  if not (prefix_known t fake.prefix) then
    invalid_arg
      (Printf.sprintf "Lsdb.install_fake: unknown prefix %s" fake.prefix);
  t.fake_list <-
    List.filter (fun (f : Lsa.fake) -> not (String.equal f.fake_id fake.fake_id)) t.fake_list
    @ [ fake ];
  t.last_origin <- Some fake.attachment;
  bump t (Lsa.key (Fake fake))

let retract_fake t ~fake_id =
  match
    List.find_opt (fun (f : Lsa.fake) -> String.equal f.fake_id fake_id) t.fake_list
  with
  | None -> raise Not_found
  | Some fake ->
    t.fake_list <-
      List.filter
        (fun (f : Lsa.fake) -> not (String.equal f.fake_id fake_id))
        t.fake_list;
    t.last_origin <- Some fake.attachment;
    bump t (Printf.sprintf "fake:%s" fake_id)

let retract_all_fakes t =
  List.iter (fun (f : Lsa.fake) -> retract_fake t ~fake_id:f.fake_id)
    (List.rev t.fake_list)

let fakes t = t.fake_list

let fake_count t = List.length t.fake_list

let prefixes t = t.announcements

let prefix_list t =
  List.sort_uniq compare (List.map (fun (p, _, _) -> p) t.announcements)

let sequence t ~key = Hashtbl.find_opt t.sequences key

let version t = t.version

let last_origin t = t.last_origin

let touch ?origin t =
  (match origin with Some _ -> t.last_origin <- origin | None -> ());
  t.version <- t.version + 1

let build_view t =
  let graph = Graph.copy t.base in
  let real_nodes = Graph.node_count graph in
  (* One stub node per fake: reachable only via its attachment. *)
  let fake_of_node =
    List.map
      (fun (f : Lsa.fake) ->
        let node = Graph.add_node graph ~name:f.fake_id in
        Graph.add_edge graph f.attachment node ~weight:f.attachment_cost;
        (node, f))
      t.fake_list
  in
  (* One sink per prefix, fed by real announcers and by fakes. A cost of 0
     is represented by a +1 offset on every announcer edge (Graph rejects
     zero-weight edges), which preserves all cost comparisons. *)
  let sink_of_prefix =
    List.map
      (fun prefix ->
        let sink = Graph.add_node graph ~name:(Printf.sprintf "prefix:%s" prefix) in
        List.iter
          (fun (p, origin, cost) ->
            if String.equal p prefix then
              Graph.add_edge graph origin sink ~weight:(cost + 1))
          t.announcements;
        List.iter
          (fun (node, (f : Lsa.fake)) ->
            if String.equal f.prefix prefix then
              Graph.add_edge graph node sink ~weight:(f.announced_cost + 1))
          fake_of_node;
        (prefix, sink))
      (prefix_list t)
  in
  { graph; real_nodes; sink_of_prefix; fake_of_node }

let view t =
  match t.cached_view with
  | Some (version, v) when version = t.version -> v
  | Some _ | None ->
    let v = build_view t in
    t.cached_view <- Some (t.version, v);
    v
