(** Asynchronous IGP reconvergence.

    A flooded LSA does not change the network atomically: each router
    receives it after the flood has travelled to it, runs SPF, and
    installs the new FIB — all at its own pace. Between the first and the
    last installation the network forwards with a {e mix} of old and new
    FIBs; this is where micro-loops and transient blackholes live, and
    why the paper's controller can react "quickly" (one LSA flood)
    while weight reconfiguration is "too slow" (every change replays
    this window on every router).

    [analyze] replays an LSDB change router by router, in installation
    order, and reports how long the network spends in unsafe mixed
    states. Fibbing's equal-cost additions are loop-free through the
    whole window; weight changes generally are not. *)

type timing = {
  flood_per_hop : float;  (** Seconds per flooding hop (default 0.01). *)
  spf_delay : float;
      (** SPF computation + FIB installation time per router
          (default 0.15). *)
  jitter : float;
      (** Deterministic per-router stagger added as
          [router_id mod 7 * jitter] (default 0.02), modelling unequal
          router load. *)
}

val default_timing : timing

val installation_schedule :
  timing ->
  Netgraph.Graph.t ->
  origin:Netgraph.Graph.node ->
  (Netgraph.Graph.node * float) list
(** When each router installs the new FIB, relative to the origination
    time: flood depth x per-hop + SPF delay + jitter. Sorted by time;
    unreachable routers are omitted. *)

type verdict =
  | Safe
  | Loop of Netgraph.Graph.node list  (** Routers on (or feeding) a cycle. *)
  | Blackhole of Netgraph.Graph.node  (** A routed router forwards into the void. *)

val forwarding_verdict :
  nodes:Netgraph.Graph.node list ->
  fib:(Netgraph.Graph.node -> Fib.t option) ->
  verdict
(** Safety of an arbitrary forwarding state given as a FIB lookup —
    shared by the transient-order checker and the convergence replay. *)

type report = {
  states : int;  (** Mixed states traversed (= routers that changed). *)
  unsafe_states : int;
  unsafe_window : float;  (** Total seconds spent in unsafe states. *)
  convergence_time : float;  (** Time of the last installation. *)
  first_problem : (float * string) option;
      (** Onset time and description of the first unsafe state. *)
}

val analyze :
  ?timing:timing ->
  before:Network.t ->
  after:Network.t ->
  origin:Netgraph.Graph.node ->
  prefix:Lsa.prefix ->
  unit ->
  report
(** Replay the change from [before]'s routing to [after]'s: routers
    adopt their new FIB at their scheduled time; after every adoption
    the mixed state is checked. Both networks must share the same
    physical graph shape (same node ids). *)
