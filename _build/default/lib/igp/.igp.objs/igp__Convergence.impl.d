lib/igp/convergence.ml: Array Fib Hashtbl List Netgraph Network Option Printf Queue String
