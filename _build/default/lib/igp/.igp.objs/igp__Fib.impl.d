lib/igp/fib.ml: Format List Lsa Netgraph String
