lib/igp/network.ml: Array Codec Fib Flooding List Lsa Lsdb Netgraph Option Spf_engine String
