lib/igp/network.ml: Codec Fib Flooding Hashtbl List Lsa Lsdb Netgraph Option Spf String
