lib/igp/flooding.mli: Netgraph
