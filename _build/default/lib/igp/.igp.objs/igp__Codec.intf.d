lib/igp/codec.mli: Lsa
