lib/igp/fib.mli: Format Lsa Netgraph
