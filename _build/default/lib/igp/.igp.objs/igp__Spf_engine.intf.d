lib/igp/spf_engine.mli: Fib Kit Lsa Lsdb Netgraph
