lib/igp/flooding.ml: Array Netgraph Queue
