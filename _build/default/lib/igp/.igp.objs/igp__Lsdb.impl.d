lib/igp/lsdb.ml: Array Hashtbl List Lsa Netgraph Option Printf String
