lib/igp/lsdb.ml: Hashtbl List Lsa Netgraph Option Printf String
