lib/igp/lsa.mli: Format Netgraph
