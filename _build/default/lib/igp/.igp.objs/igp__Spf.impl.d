lib/igp/spf.ml: Array Fib Hashtbl List Lsa Lsdb Netgraph Option
