lib/igp/spf.ml: Fib Hashtbl List Lsa Lsdb Netgraph Option
