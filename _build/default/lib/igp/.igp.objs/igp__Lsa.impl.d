lib/igp/lsa.ml: Format Netgraph Printf
