lib/igp/codec.ml: Bytes Char Int32 List Lsa Printf String
