lib/igp/network.mli: Fib Flooding Lsa Lsdb Netgraph Spf_engine
