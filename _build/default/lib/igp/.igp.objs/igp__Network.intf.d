lib/igp/network.mli: Fib Flooding Lsa Lsdb Netgraph
