lib/igp/convergence.mli: Fib Lsa Netgraph Network
