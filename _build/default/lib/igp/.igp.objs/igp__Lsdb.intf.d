lib/igp/lsdb.mli: Hashtbl Lsa Netgraph
