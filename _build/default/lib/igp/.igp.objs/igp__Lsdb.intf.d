lib/igp/lsdb.mli: Lsa Netgraph
