lib/igp/spf.mli: Fib Lsa Lsdb Netgraph
