lib/igp/spf_engine.ml: Array Atomic Fib Hashtbl Kit List Lsa Lsdb Netgraph Option Spf
