type entry = {
  next_hop : Netgraph.Graph.node;
  multiplicity : int;
  via_fakes : string list;
}

type t = {
  router : Netgraph.Graph.node;
  prefix : Lsa.prefix;
  distance : int;
  local : bool;
  entries : entry list;
}

let next_hops t = List.map (fun e -> e.next_hop) t.entries

let weights t = List.map (fun e -> (e.next_hop, e.multiplicity)) t.entries

let total_multiplicity t =
  List.fold_left (fun acc e -> acc + e.multiplicity) 0 t.entries

let fractions t =
  let total = total_multiplicity t in
  if total = 0 then []
  else
    List.map
      (fun e -> (e.next_hop, float_of_int e.multiplicity /. float_of_int total))
      t.entries

let uses_fake t = List.exists (fun e -> e.via_fakes <> []) t.entries

let equal_forwarding a b = weights a = weights b

let pp ~names fmt t =
  if t.local then
    Format.fprintf fmt "%s -> %s: local (cost %d)" (names t.router) t.prefix
      t.distance
  else
    Format.fprintf fmt "%s -> %s (cost %d): %a" (names t.router) t.prefix
      t.distance
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         (fun fmt e ->
           if e.via_fakes = [] then
             Format.fprintf fmt "%s x%d" (names e.next_hop) e.multiplicity
           else
             Format.fprintf fmt "%s x%d (via %s)" (names e.next_hop)
               e.multiplicity
               (String.concat "+" e.via_fakes)))
      t.entries
