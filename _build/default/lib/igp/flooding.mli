(** Control-plane cost model for LSA flooding.

    When an LSA is (re)originated, OSPF reliably floods it over every
    adjacency: each directed link carries the update once (plus an ack we
    do not count separately). The number of rounds until every router has
    the update equals the origin's eccentricity in hops. These are the
    quantities behind the paper's "very limited control-plane overhead"
    claim and the TOVH experiment. *)

type cost = {
  messages : int;  (** LSA copies transmitted (one per directed link). *)
  rounds : int;  (** Propagation depth from the origin (BFS hops). *)
}

val flood : Netgraph.Graph.t -> origin:Netgraph.Graph.node -> cost
(** Cost of flooding one LSA originated at [origin] over the physical
    topology. Only links between routers reachable from the origin
    count. *)

val zero : cost

val add : cost -> cost -> cost
(** Messages add; rounds take the maximum (floods proceed in parallel). *)
