(** Per-router, per-prefix forwarding entries as installed after SPF.

    An entry's [multiplicity] is the number of equal-cost routes resolving
    to that next hop: real ECMP paths contribute at most 1 per next hop
    (routers deduplicate identical next hops computed from the real
    topology), while every fake route contributes 1 even when several
    resolve to the same physical next hop — this is how Fibbing encodes
    uneven ratios on stock ECMP hardware. *)

type entry = {
  next_hop : Netgraph.Graph.node;
  multiplicity : int;
  via_fakes : string list;
      (** Identifiers of the fake LSAs contributing to this entry; [[]]
          for purely real entries. *)
}

type t = {
  router : Netgraph.Graph.node;
  prefix : Lsa.prefix;
  distance : int;  (** SPF cost from the router to the prefix. *)
  local : bool;  (** The router itself announces the prefix. *)
  entries : entry list;  (** Sorted by next hop. *)
}

val next_hops : t -> Netgraph.Graph.node list
(** Distinct next hops, ascending. *)

val weights : t -> (Netgraph.Graph.node * int) list
(** Next hop with aggregated multiplicity, ascending by next hop. *)

val total_multiplicity : t -> int

val fractions : t -> (Netgraph.Graph.node * float) list
(** Traffic fraction sent to each next hop under per-flow ECMP hashing
    (multiplicity / total). Empty when [local] or no entries. *)

val uses_fake : t -> bool

val equal_forwarding : t -> t -> bool
(** Same next hops with the same aggregated multiplicities (ignores which
    fakes produced them). *)

val pp : names:(Netgraph.Graph.node -> string) -> Format.formatter -> t -> unit
