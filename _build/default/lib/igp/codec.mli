(** Binary wire format for LSAs.

    The real Fibbing controller speaks OSPF on the wire: it forges
    type-1 (router) and type-5 (external, with forwarding address) LSAs
    byte by byte. This module provides an OSPF-flavoured binary codec so
    the simulated controller exercises the same serialize-flood-parse
    path: a 16-byte common header (age, type, origin, sequence number,
    length) protected by a Fletcher-16 checksum over the body, followed
    by a per-type payload. Fake LSAs use a private opaque type carrying
    the attachment and forwarding-address mapping.

    Decoding is total: malformed input yields [Error] with a reason,
    never an exception. *)

type packet = {
  lsa : Lsa.t;
  sequence : int;  (** 32-bit, as flooded. *)
}

val encode : ?age:int -> packet -> bytes
(** Raises [Invalid_argument] if a name exceeds 255 bytes, a cost exceeds
    its 24-bit field, a node id exceeds 32 bits, or [age]/[sequence] are
    out of range. *)

val decode : bytes -> (packet, string) result
(** Checks length consistency and the checksum. *)

val decode_age : bytes -> (int, string) result
(** The age field only (it is excluded from the checksum, as in OSPF,
    so relays can age a packet without re-summing). *)

val fletcher16 : bytes -> pos:int -> len:int -> int
(** The checksum primitive, exposed for tests. *)

val wire_length : packet -> int
(** Length of [encode packet] without building it. *)
