(** Per-router shortest-path-first computation over the LSDB view.

    [compute_prefix] mirrors what one OSPF router does: Dijkstra on the
    augmented graph, collection of the equal-cost first hops towards the
    prefix's virtual sink, and resolution of fake first hops to the
    physical next hop given by the fake's forwarding-address mapping. *)

val compute_prefix :
  Lsdb.view -> router:Netgraph.Graph.node -> Lsa.prefix -> Fib.t option
(** [None] when the prefix is unknown or unreachable from the router. *)

val compute : Lsdb.view -> router:Netgraph.Graph.node -> Fib.t list
(** FIBs for every reachable prefix (sorted by prefix name). *)

val distance :
  Lsdb.view -> router:Netgraph.Graph.node -> Lsa.prefix -> int option
(** SPF cost to the prefix without building the FIB. *)
