(** Quality-of-experience aggregation over a population of clients. *)

type summary = {
  sessions : int;
  smooth_sessions : int;  (** Sessions with no stall and prompt startup. *)
  total_stalls : int;
  mean_stall_time : float;  (** Seconds, over all sessions. *)
  mean_startup_delay : float;
  stall_ratio : float;  (** Stalled time / (played + stalled) time. *)
  mos : float;
      (** Crude mean-opinion-score proxy in [1, 5]:
          5 − 4 × min(1, stall_ratio × 6 + startup_penalty); only the
          ordering between scenarios is meaningful. *)
}

val summarize : Client.result list -> summary
(** Raises [Invalid_argument] on the empty list. *)

val pp : Format.formatter -> summary -> unit
