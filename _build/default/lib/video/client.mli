(** Playback-buffer model of a video client.

    The demo's observable is that "video playbacks are smooth when the
    Fibbing controller is in use and stutter when disabled". We replay
    the throughput a flow received during the simulation through a
    standard buffer model: downloaded bytes fill the buffer, playback
    drains it at the video bitrate once [startup_buffer] seconds of
    content are available, and an empty buffer stalls playback until
    [resume_buffer] seconds have re-accumulated. *)

type config = {
  bitrate : float;  (** Video encoding rate, bytes/s. *)
  startup_buffer : float;  (** Seconds of content before playback starts. *)
  resume_buffer : float;  (** Seconds of content to resume after a stall. *)
}

val default_config : config
(** 1 Mbps video (131072 bytes/s), 2 s startup, 2 s resume. *)

type result = {
  startup_delay : float;  (** Wall time until playback began. *)
  stall_count : int;  (** Playback interruptions after startup. *)
  stall_time : float;  (** Total seconds spent stalled (after startup). *)
  played : float;  (** Seconds of content played. *)
  smooth : bool;  (** Started within 2x startup_buffer and never stalled. *)
}

val replay :
  ?config:config ->
  duration:float ->
  dt:float ->
  (float * float) list ->
  result
(** [replay ~duration ~dt samples] plays a [duration]-seconds video from
    step-wise throughput [samples] ((time, bytes/s), as produced by
    [Netsim.Sim.flow_series]); each sample holds for [dt] seconds. The
    replay stops when the content is fully played or the samples run
    out. *)

val of_flow :
  ?config:config -> Netsim.Sim.t -> dt:float -> Netsim.Flow.t -> result
(** Replay a simulated flow's recorded throughput; the video duration is
    the flow's duration (capped at the simulated horizon). *)
