(** Content catalog with Zipf popularity and composite day-scale
    workloads.

    Flash crowds are popularity anomalies on top of ordinary demand:
    "a sudden surge of traffic due to content shared over social
    networks" (§1). This module generates that background: a catalog of
    videos with Zipf-distributed request popularity, a diurnal arrival
    rate, and superimposed surges pinned to one item — the workload used
    by the day-in-the-life example. *)

type item = {
  rank : int;  (** 1 = most popular. *)
  rate : float;  (** Stream bitrate, bytes/s. *)
  duration : float;  (** Video length, seconds. *)
}

val catalog : size:int -> rate:float -> duration:float -> item list
(** A uniform-encoding catalog of [size] items. *)

val zipf_pick : Kit.Prng.t -> s:float -> size:int -> int
(** Sample a 1-based rank from a Zipf(s) distribution over [size]
    items (s ~ 0.8–1.2 for video catalogs). *)

type surge = {
  at : float;  (** Start time, s. *)
  length : float;  (** Surge duration, s. *)
  boost : float;  (** Multiplier on the arrival rate during the surge. *)
  item_rank : int;  (** Every surge request hits this item. *)
}

val day :
  Kit.Prng.t ->
  src:Netgraph.Graph.node ->
  prefix:Igp.Lsa.prefix ->
  catalog:item list ->
  base_rate_per_s:float ->
  horizon:float ->
  surges:surge list ->
  first_id:int ->
  Netsim.Flow.t list
(** Poisson background arrivals at [base_rate_per_s] with Zipf item
    choice, plus the surges: during a surge the arrival process gains
    [boost] x [base_rate_per_s] extra arrivals, all requesting
    [item_rank]. Flow demands and durations come from the chosen item.
    Deterministic given the PRNG. *)
