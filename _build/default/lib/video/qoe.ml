type summary = {
  sessions : int;
  smooth_sessions : int;
  total_stalls : int;
  mean_stall_time : float;
  mean_startup_delay : float;
  stall_ratio : float;
  mos : float;
}

let summarize = function
  | [] -> invalid_arg "Qoe.summarize: no sessions"
  | results ->
    let sessions = List.length results in
    let smooth_sessions =
      List.length (List.filter (fun (r : Client.result) -> r.smooth) results)
    in
    let total_stalls =
      List.fold_left (fun acc (r : Client.result) -> acc + r.stall_count) 0 results
    in
    let stall_times = List.map (fun (r : Client.result) -> r.stall_time) results in
    let startup_delays =
      List.map (fun (r : Client.result) -> r.startup_delay) results
    in
    let played = List.fold_left (fun acc (r : Client.result) -> acc +. r.played) 0. results in
    let stalled = Kit.Stats.total stall_times in
    let stall_ratio = if played +. stalled <= 0. then 0. else stalled /. (played +. stalled) in
    let mean_startup_delay = Kit.Stats.mean startup_delays in
    let startup_penalty = min 0.5 (mean_startup_delay /. 60.) in
    let mos = 5. -. (4. *. min 1. ((stall_ratio *. 6.) +. startup_penalty)) in
    {
      sessions;
      smooth_sessions;
      total_stalls;
      mean_stall_time = Kit.Stats.mean stall_times;
      mean_startup_delay;
      stall_ratio;
      mos;
    }

let pp fmt s =
  Format.fprintf fmt
    "sessions=%d smooth=%d stalls=%d mean_stall=%.2fs mean_startup=%.2fs \
     stall_ratio=%.3f mos=%.2f"
    s.sessions s.smooth_sessions s.total_stalls s.mean_stall_time
    s.mean_startup_delay s.stall_ratio s.mos
