lib/video/workload.ml: Igp Kit List Netgraph Netsim
