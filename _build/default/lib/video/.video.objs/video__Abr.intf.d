lib/video/abr.mli: Netsim
