lib/video/qoe.mli: Client Format
