lib/video/abr.ml: Array Kit List Netsim
