lib/video/catalog.ml: Array Kit List Netsim
