lib/video/client.mli: Netsim
