lib/video/qoe.ml: Client Format Kit List
