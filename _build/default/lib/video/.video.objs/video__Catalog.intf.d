lib/video/catalog.mli: Igp Kit Netgraph Netsim
