lib/video/client.ml: Kit List Netsim
