lib/video/workload.mli: Igp Kit Netgraph Netsim
