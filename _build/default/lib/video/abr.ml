type config = {
  ladder : float array;
  startup_buffer : float;
  resume_buffer : float;
  safety : float;
  switch_up_buffer : float;
  estimate_alpha : float;
}

let default_config =
  {
    ladder = [| 44800.; 131072.; 393216. |] (* 350 kbps, 1 Mbps, 3 Mbps *);
    startup_buffer = 2.;
    resume_buffer = 2.;
    safety = 0.85;
    switch_up_buffer = 8.;
    estimate_alpha = 0.3;
  }

type result = {
  startup_delay : float;
  stall_count : int;
  stall_time : float;
  played : float;
  mean_bitrate : float;
  switches : int;
  time_at_top : float;
}

type phase = Starting | Playing | Stalled

let validate config =
  if Array.length config.ladder = 0 then invalid_arg "Abr.replay: empty ladder";
  let sorted = Array.copy config.ladder in
  Array.sort compare sorted;
  if sorted <> config.ladder then invalid_arg "Abr.replay: ladder must ascend";
  Array.iter (fun r -> if r <= 0. then invalid_arg "Abr.replay: bitrate <= 0")
    config.ladder

(* Highest rung affordable under the safety-discounted estimate, subject
   to the buffer gate for upward switches. *)
let select config ~current ~estimate ~buffer =
  let affordable = config.safety *. estimate in
  let best = ref 0 in
  Array.iteri
    (fun i rate -> if rate <= affordable then best := i)
    config.ladder;
  if !best > current && buffer < config.switch_up_buffer then current
  else !best

let replay ?(config = default_config) ~duration ~dt samples =
  validate config;
  if dt <= 0. then invalid_arg "Abr.replay: dt";
  let buffer = ref 0. in
  let played = ref 0. in
  let weighted_bitrate = ref 0. in
  let time_at_top = ref 0. in
  let switches = ref 0 in
  let phase = ref Starting in
  let startup_delay = ref 0. in
  let stall_count = ref 0 in
  let stall_time = ref 0. in
  let elapsed = ref 0. in
  let rung = ref 0 in
  let estimate = ref config.ladder.(0) in
  let top = Array.length config.ladder - 1 in
  let finished () = !played >= duration -. 1e-9 in
  List.iter
    (fun (_, rate) ->
      if not (finished ()) then begin
        estimate :=
          Kit.Stats.ewma ~alpha:config.estimate_alpha !estimate rate;
        let choice =
          select config ~current:!rung ~estimate:!estimate ~buffer:!buffer
        in
        if choice <> !rung && !phase <> Starting then incr switches;
        rung := choice;
        let bitrate = config.ladder.(!rung) in
        (* Download: the rate buys rate/bitrate seconds of content. *)
        let content_left = duration -. !played -. !buffer in
        let downloaded = min (rate *. dt /. bitrate) (max 0. content_left) in
        buffer := !buffer +. downloaded;
        let fully_buffered = duration -. !played -. !buffer <= 1e-9 in
        (match !phase with
        | Starting ->
          if !buffer >= config.startup_buffer || fully_buffered then begin
            phase := Playing;
            startup_delay := !elapsed
          end
          else startup_delay := !elapsed +. dt
        | Playing ->
          let play = min dt !buffer in
          played := !played +. play;
          weighted_bitrate := !weighted_bitrate +. (play *. bitrate);
          if !rung = top then time_at_top := !time_at_top +. play;
          buffer := !buffer -. play;
          if play < dt -. 1e-9 && not (finished ()) then begin
            phase := Stalled;
            incr stall_count;
            stall_time := !stall_time +. (dt -. play)
          end
        | Stalled ->
          if !buffer >= config.resume_buffer then begin
            phase := Playing;
            let play = min dt !buffer in
            played := !played +. play;
            weighted_bitrate := !weighted_bitrate +. (play *. bitrate);
            if !rung = top then time_at_top := !time_at_top +. play;
            buffer := !buffer -. play
          end
          else stall_time := !stall_time +. dt);
        elapsed := !elapsed +. dt
      end)
    samples;
  {
    startup_delay = !startup_delay;
    stall_count = !stall_count;
    stall_time = !stall_time;
    played = !played;
    mean_bitrate = (if !played > 0. then !weighted_bitrate /. !played else 0.);
    switches = !switches;
    time_at_top = !time_at_top;
  }

let of_flow ?(config = default_config) sim ~dt (flow : Netsim.Flow.t) =
  let series = Netsim.Sim.flow_series sim flow.id in
  let duration = min flow.duration (Netsim.Sim.time sim -. flow.start_time) in
  replay ~config ~duration ~dt (Kit.Timeseries.samples series)
