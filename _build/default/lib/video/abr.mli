(** Adaptive-bitrate (ABR) client.

    The demo streams fixed-rate videos; production players adapt their
    bitrate to the measured throughput. This client runs a standard
    hybrid rate/buffer heuristic over a simulated flow's throughput
    history: it estimates throughput with an EWMA, picks the highest
    ladder rung under [safety] x estimate, and only switches up when the
    buffer is comfortable. It quantifies a second benefit of Fibbing in
    the demo scenario: without load balancing, clients do not just
    stall — they also get pushed down the ladder. *)

type config = {
  ladder : float array;
      (** Available bitrates, ascending, bytes/s. Must be non-empty. *)
  startup_buffer : float;  (** Seconds of content before playback starts. *)
  resume_buffer : float;  (** Seconds to resume after a stall. *)
  safety : float;  (** Fraction of estimated throughput to spend (0.85). *)
  switch_up_buffer : float;
      (** Minimum buffered seconds before switching up (8 s). *)
  estimate_alpha : float;  (** EWMA weight of new throughput samples. *)
}

val default_config : config
(** Ladder 350 kbps / 1 Mbps / 3 Mbps (in bytes/s), 2 s startup and
    resume, safety 0.85, switch-up at 8 s buffered, alpha 0.3. *)

type result = {
  startup_delay : float;
  stall_count : int;
  stall_time : float;
  played : float;  (** Seconds of content played. *)
  mean_bitrate : float;  (** Play-time-weighted mean bitrate, bytes/s. *)
  switches : int;  (** Bitrate changes after startup. *)
  time_at_top : float;  (** Seconds played at the highest rung. *)
}

val replay :
  ?config:config -> duration:float -> dt:float -> (float * float) list -> result
(** Like [Client.replay], over step-wise throughput samples. *)

val of_flow :
  ?config:config -> Netsim.Sim.t -> dt:float -> Netsim.Flow.t -> result
