type item = { rank : int; rate : float; duration : float }

let catalog ~size ~rate ~duration =
  if size < 1 then invalid_arg "Catalog.catalog: size";
  List.init size (fun i -> { rank = i + 1; rate; duration })

(* Inverse-CDF sampling over the (finite) Zipf weights 1/k^s. *)
let zipf_pick prng ~s ~size =
  if size < 1 then invalid_arg "Catalog.zipf_pick: size";
  let weights = Array.init size (fun i -> 1. /. (float_of_int (i + 1) ** s)) in
  let total = Array.fold_left ( +. ) 0. weights in
  let u = Kit.Prng.float prng total in
  let rec scan k acc =
    if k >= size - 1 then size
    else begin
      let acc = acc +. weights.(k) in
      if u < acc then k + 1 else scan (k + 1) acc
    end
  in
  scan 0 0.

type surge = { at : float; length : float; boost : float; item_rank : int }

let day prng ~src ~prefix ~catalog ~base_rate_per_s ~horizon ~surges ~first_id =
  if base_rate_per_s <= 0. then invalid_arg "Catalog.day: base rate";
  let size = List.length catalog in
  if size = 0 then invalid_arg "Catalog.day: empty catalog";
  let item_of_rank rank = List.nth catalog (rank - 1) in
  let flows = ref [] in
  let next_id = ref first_id in
  let emit ~start_time (item : item) =
    flows :=
      Netsim.Flow.make ~id:!next_id ~src ~prefix ~demand:item.rate ~start_time
        ~duration:item.duration ()
      :: !flows;
    incr next_id
  in
  (* Background: Poisson arrivals, Zipf item choice. *)
  let rec background time =
    let time = time +. Kit.Prng.exponential prng ~mean:(1. /. base_rate_per_s) in
    if time < horizon then begin
      let rank = zipf_pick prng ~s:1.0 ~size in
      emit ~start_time:time (item_of_rank rank);
      background time
    end
  in
  background 0.;
  (* Surges: extra arrivals pinned to one item. *)
  List.iter
    (fun surge ->
      if surge.boost <= 0. || surge.length <= 0. then
        invalid_arg "Catalog.day: bad surge";
      let rate = base_rate_per_s *. surge.boost in
      let rec arrivals time =
        let time = time +. Kit.Prng.exponential prng ~mean:(1. /. rate) in
        if time < surge.at +. surge.length && time < horizon then begin
          emit ~start_time:time (item_of_rank surge.item_rank);
          arrivals time
        end
      in
      arrivals surge.at)
    surges;
  List.sort
    (fun (a : Netsim.Flow.t) (b : Netsim.Flow.t) ->
      compare a.start_time b.start_time)
    !flows
