type config = {
  bitrate : float;
  startup_buffer : float;
  resume_buffer : float;
}

let default_config = { bitrate = 131072.; startup_buffer = 2.; resume_buffer = 2. }

type result = {
  startup_delay : float;
  stall_count : int;
  stall_time : float;
  played : float;
  smooth : bool;
}

type phase = Starting | Playing | Stalled

let replay ?(config = default_config) ~duration ~dt samples =
  if config.bitrate <= 0. then invalid_arg "Client.replay: bitrate";
  if dt <= 0. then invalid_arg "Client.replay: dt";
  let buffer = ref 0. (* seconds of content buffered *) in
  let played = ref 0. in
  let phase = ref Starting in
  let startup_delay = ref 0. in
  let stall_count = ref 0 in
  let stall_time = ref 0. in
  let elapsed = ref 0. in
  let finished () = !played >= duration -. 1e-9 in
  List.iter
    (fun (_, rate) ->
      if not (finished ()) then begin
        (* Download first: the server never sends more than the video. *)
        let content_left = duration -. !played -. !buffer in
        let downloaded = min (rate *. dt /. config.bitrate) content_left in
        buffer := !buffer +. max 0. downloaded;
        let fully_buffered = duration -. !played -. !buffer <= 1e-9 in
        (match !phase with
        | Starting ->
          if !buffer >= config.startup_buffer || fully_buffered then begin
            phase := Playing;
            startup_delay := !elapsed
          end
          else startup_delay := !elapsed +. dt
        | Playing ->
          let play = min dt !buffer in
          played := !played +. play;
          buffer := !buffer -. play;
          if play < dt -. 1e-9 && not (finished ()) then begin
            phase := Stalled;
            incr stall_count;
            stall_time := !stall_time +. (dt -. play)
          end
        | Stalled ->
          if !buffer >= config.resume_buffer then begin
            phase := Playing;
            let play = min dt !buffer in
            played := !played +. play;
            buffer := !buffer -. play
          end
          else stall_time := !stall_time +. dt);
        elapsed := !elapsed +. dt
      end)
    samples;
  let smooth =
    !stall_count = 0
    && !phase <> Starting
    && !startup_delay <= 2. *. config.startup_buffer
  in
  {
    startup_delay = !startup_delay;
    stall_count = !stall_count;
    stall_time = !stall_time;
    played = !played;
    smooth;
  }

let of_flow ?(config = default_config) sim ~dt (flow : Netsim.Flow.t) =
  let series = Netsim.Sim.flow_series sim flow.id in
  let duration =
    min flow.duration (Netsim.Sim.time sim -. flow.start_time)
  in
  replay ~config ~duration ~dt (Kit.Timeseries.samples series)
