(** IGP link-weight optimization — the "traditional TE" baseline.

    This is the scheme the paper says is too slow and too disruptive for
    flash crowds: recompute link weights for the new demands and push
    them to every device. We implement a Fortz–Thorup-style local search
    minimizing the maximum link utilization of pure IGP/ECMP routing,
    and account what deploying the result would cost: how many weights
    change (each one is a router reconfiguration plus a network-wide
    reflood and SPF rerun on every router) versus Fibbing's handful of
    fake LSAs. *)

type outcome = {
  max_utilization : float;  (** Objective after the search. *)
  initial_utilization : float;
  changed_weights : ((Netgraph.Graph.node * Netgraph.Graph.node) * int * int) list;
      (** [(link, old_weight, new_weight)] for every modified link. *)
  evaluations : int;  (** Candidate solutions evaluated. *)
}

val optimize :
  ?max_weight:int ->
  ?max_rounds:int ->
  Igp.Network.t ->
  Netsim.Loadmap.demand list ->
  Netsim.Link.capacities ->
  outcome
(** Hill-climb over single-link symmetric weight changes (weights in
    [\[1, max_weight\]], default 8; at most [max_rounds] improving
    passes, default 8). The network's weights are mutated in place
    (callers wanting a what-if run pass [Igp.Network.clone]). Demands
    that cannot be routed make the candidate infeasible (skipped). *)

val apply_cost : Igp.Network.t -> outcome -> Igp.Flooding.cost
(** Control-plane cost of deploying the weight changes: one router-LSA
    reflood per changed directed weight. *)
