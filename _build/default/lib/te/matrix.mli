(** Traffic matrices: offered demand per (ingress router, prefix).

    Traditional TE pre-computes configurations for such a matrix; the
    paper's point is that flash crowds invalidate it. The benchmarks use
    matrices both ways: as input to the optimal min–max computation that
    Fibbing can realize, and as the "predictable load" the weight
    optimizer was tuned for before the surge. *)

type entry = {
  src : Netgraph.Graph.node;
  prefix : Igp.Lsa.prefix;
  demand : float;  (** bytes/s, non-negative *)
}

type t

val of_entries : entry list -> t
(** Entries with the same (src, prefix) are summed. Raises
    [Invalid_argument] on negative demand. *)

val entries : t -> entry list
(** Aggregated entries, sorted by (prefix, src). *)

val demand : t -> src:Netgraph.Graph.node -> prefix:Igp.Lsa.prefix -> float

val total : t -> float

val scale : t -> float -> t
(** Multiply every demand (models a uniform surge). *)

val add : t -> t -> t

val prefixes : t -> Igp.Lsa.prefix list

val to_demands : t -> Netsim.Loadmap.demand list

val of_flows : Netsim.Flow.t list -> t
(** Matrix of the flows' offered demands (each counted fully, regardless
    of activation time). *)
