module Graph = Netgraph.Graph

type commodity = {
  src : Graph.node;
  dst : Graph.node;
  prefix : Igp.Lsa.prefix;
  demand : float;
}

type result = {
  lambda : float;
  flows : (Igp.Lsa.prefix * ((Graph.node * Graph.node) * float) list) list;
}

(* Dijkstra under float edge lengths; returns predecessor chain. *)
let shortest_path g lengths ~src ~dst =
  let n = Graph.node_count g in
  let dist = Array.make n infinity in
  let pred = Array.make n (-1) in
  let settled = Array.make n false in
  let heap = Kit.Heap.create () in
  dist.(src) <- 0.;
  Kit.Heap.push heap ~priority:0. src;
  let rec loop () =
    match Kit.Heap.pop heap with
    | None -> ()
    | Some (_, u) ->
      if u = dst then ()
      else begin
        if not settled.(u) then begin
          settled.(u) <- true;
          Graph.iter_succ g u (fun v _ ->
              let len : float = Hashtbl.find lengths (u, v) in
              let candidate = dist.(u) +. len in
              if candidate < dist.(v) then begin
                dist.(v) <- candidate;
                pred.(v) <- u;
                Kit.Heap.push heap ~priority:candidate v
              end)
        end;
        loop ()
      end
  in
  loop ();
  if dist.(dst) = infinity then None
  else begin
    let rec rebuild v acc =
      if v = src then v :: acc else rebuild pred.(v) (v :: acc)
    in
    Some (rebuild dst [])
  end

let path_edges path =
  let rec walk acc = function
    | u :: (v :: _ as rest) -> walk ((u, v) :: acc) rest
    | _ -> List.rev acc
  in
  walk [] path

let solve ?(epsilon = 0.1) g ~capacities commodities =
  if epsilon <= 0. || epsilon >= 1. then invalid_arg "Mcf.solve: epsilon in (0,1)";
  List.iter
    (fun c -> if c.demand <= 0. then invalid_arg "Mcf.solve: non-positive demand")
    commodities;
  let edges = List.map (fun (u, v, _) -> (u, v)) (Graph.edges g) in
  let cap e =
    let c = capacities e in
    if c <= 0. then invalid_arg "Mcf.solve: non-positive capacity";
    c
  in
  let m = float_of_int (List.length edges) in
  let delta = (1. +. epsilon) *. (((1. +. epsilon) *. m) ** (-1. /. epsilon)) in
  let lengths = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace lengths e (delta /. cap e)) edges;
  let d_of_lengths () =
    List.fold_left (fun acc e -> acc +. (Hashtbl.find lengths e *. cap e)) 0. edges
  in
  let commodities = Array.of_list commodities in
  let k = Array.length commodities in
  (* Per-commodity accumulated (unscaled) edge flows and totals. *)
  let flows = Array.init k (fun _ -> Hashtbl.create 16) in
  let routed = Array.make k 0. in
  let d = ref (d_of_lengths ()) in
  (* A commodity with no path at all is a hard error (checked once). *)
  Array.iter
    (fun c ->
      if shortest_path g lengths ~src:c.src ~dst:c.dst = None then
        invalid_arg "Mcf.solve: unroutable commodity")
    commodities;
  while !d < 1. do
    for j = 0 to k - 1 do
      let c = commodities.(j) in
      let remaining = ref c.demand in
      while !remaining > 1e-12 && !d < 1. do
        match shortest_path g lengths ~src:c.src ~dst:c.dst with
        | None -> remaining := 0.
        | Some path ->
          let es = path_edges path in
          let bottleneck =
            List.fold_left (fun acc e -> min acc (cap e)) infinity es
          in
          let f = min !remaining bottleneck in
          List.iter
            (fun e ->
              Hashtbl.replace flows.(j) e
                (f +. Option.value ~default:0. (Hashtbl.find_opt flows.(j) e));
              let len = Hashtbl.find lengths e in
              Hashtbl.replace lengths e (len *. (1. +. (epsilon *. f /. cap e))))
            es;
          routed.(j) <- routed.(j) +. f;
          remaining := !remaining -. f;
          d := d_of_lengths ()
      done
    done
  done;
  let scale = log (1. /. delta) /. log (1. +. epsilon) in
  let lambda = ref infinity in
  for j = 0 to k - 1 do
    lambda := min !lambda (routed.(j) /. commodities.(j).demand /. scale)
  done;
  (* Normalize per commodity so the pattern carries exactly its demand,
     then aggregate per prefix. *)
  let per_prefix = Hashtbl.create 4 in
  Array.iteri
    (fun j c ->
      let factor = if routed.(j) > 0. then c.demand /. routed.(j) else 0. in
      let table =
        match Hashtbl.find_opt per_prefix c.prefix with
        | Some t -> t
        | None ->
          let t = Hashtbl.create 16 in
          Hashtbl.replace per_prefix c.prefix t;
          t
      in
      Hashtbl.iter
        (fun e f ->
          Hashtbl.replace table e
            ((f *. factor) +. Option.value ~default:0. (Hashtbl.find_opt table e)))
        flows.(j))
    commodities;
  let flows =
    Hashtbl.fold
      (fun prefix table acc ->
        let edge_flows =
          Hashtbl.to_seq table |> List.of_seq
          |> List.filter (fun (_, f) -> f > 1e-12)
          |> List.sort compare
        in
        (prefix, edge_flows) :: acc)
      per_prefix []
    |> List.sort compare
  in
  { lambda = !lambda; flows }

let max_utilization _g ~capacities result =
  let loads = Hashtbl.create 64 in
  List.iter
    (fun (_, edge_flows) ->
      List.iter
        (fun (e, f) ->
          Hashtbl.replace loads e
            (f +. Option.value ~default:0. (Hashtbl.find_opt loads e)))
        edge_flows)
    result.flows;
  Hashtbl.fold (fun e load acc -> max acc (load /. capacities e)) loads 0.
