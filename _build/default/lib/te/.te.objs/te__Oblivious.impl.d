lib/te/oblivious.ml: Hashtbl Igp List Mcf Netgraph Option
