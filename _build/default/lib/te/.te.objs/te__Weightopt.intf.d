lib/te/weightopt.mli: Igp Netgraph Netsim
