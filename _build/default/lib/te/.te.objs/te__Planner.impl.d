lib/te/planner.ml: Decompose Fibbing Format Igp List Mcf Netgraph Netsim String
