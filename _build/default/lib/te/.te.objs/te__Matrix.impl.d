lib/te/matrix.ml: Hashtbl Igp List Netgraph Netsim Option
