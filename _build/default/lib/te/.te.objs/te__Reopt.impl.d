lib/te/reopt.ml: Decompose Fibbing Igp List Mcf
