lib/te/matrix.mli: Igp Netgraph Netsim
