lib/te/mcf.mli: Igp Netgraph
