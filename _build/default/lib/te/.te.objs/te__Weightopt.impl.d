lib/te/weightopt.ml: Hashtbl Igp List Netgraph Netsim
