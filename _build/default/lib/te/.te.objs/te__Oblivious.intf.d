lib/te/oblivious.mli: Igp Mcf Netgraph
