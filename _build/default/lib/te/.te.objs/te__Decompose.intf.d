lib/te/decompose.mli: Fibbing Igp Netgraph
