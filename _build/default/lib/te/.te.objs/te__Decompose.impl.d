lib/te/decompose.ml: Fibbing Hashtbl Igp List Netgraph Option String
