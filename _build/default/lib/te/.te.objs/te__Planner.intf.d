lib/te/planner.mli: Fibbing Format Igp Netgraph Netsim
