lib/te/mcf.ml: Array Hashtbl Igp Kit List Netgraph Option
