lib/te/reopt.mli: Fibbing
