(** The canonical global reoptimizer for the Fibbing controller.

    Wires the TE pipeline — Garg–Könemann max concurrent flow, cycle
    cancellation, decomposition into per-router splits — into the
    [Fibbing.Controller.Global_optimal] strategy:

    {[
      let controller =
        Fibbing.Controller.create
          ~config:{ Fibbing.Controller.default_config with
                    strategy = Global_optimal;
                    max_entries = 16 }
          ~reoptimize:Te.Reopt.for_controller net
    ]} *)

val for_controller : Fibbing.Controller.reoptimizer
(** Solves the prefix's demands with ε = 0.1 and returns the routers
    whose splits must change; [[]] when the FPTAS cannot route a demand
    (the controller then leaves the network untouched). *)
