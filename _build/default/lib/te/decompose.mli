(** From fractional multi-commodity flows to Fibbing requirements.

    A per-prefix edge flow (e.g. computed by [Mcf]) induces, at every
    router with outgoing flow, a set of next hops and split fractions.
    After cancelling any residual flow cycles (the FPTAS can leave
    epsilon-sized ones), those fractions are exactly a [Fibbing.Requirements.t]
    that [Fibbing.Augmentation] can compile — this is the "Fibbing can
    implement the optimal solution" pipeline (experiment TOPT). *)

val cancel_cycles :
  ((Netgraph.Graph.node * Netgraph.Graph.node) * float) list ->
  ((Netgraph.Graph.node * Netgraph.Graph.node) * float) list
(** Remove circular flow (which serves no demand) by repeatedly finding a
    cycle in the positive-flow edge set and subtracting its bottleneck.
    Terminates because each round zeroes at least one edge. *)

val node_fractions :
  ((Netgraph.Graph.node * Netgraph.Graph.node) * float) list ->
  (Netgraph.Graph.node * (Netgraph.Graph.node * float) list) list
(** Per router with positive outgoing flow, the normalized next-hop
    fractions (fractions below 1e-6 are dropped and the rest
    renormalized). *)

val to_requirements :
  Igp.Network.t ->
  prefix:Igp.Lsa.prefix ->
  ((Netgraph.Graph.node * Netgraph.Graph.node) * float) list ->
  Fibbing.Requirements.t
(** Requirements for the routers whose desired fractions differ from
    their current FIB by more than 1% (no point lying to a router that
    already behaves); cycles are cancelled first. Routers that announce
    the prefix are skipped (their delivery is local). *)
