(** Maximum concurrent flow by the Garg–Könemann FPTAS.

    The paper argues (§2) that "Fibbing can theoretically implement the
    optimal solution to the min–max link utilization problem [Ahuja et
    al.]". The optimum is an LP; with no solver available offline we use
    the Garg–Könemann (1+ε) fully polynomial approximation: repeatedly
    route each commodity along the shortest path under exponential
    length weights l(e) ∝ exp(load(e)/cap(e)), then rescale.

    The result is a fractional multi-commodity flow: [lambda] is the
    largest common factor of all demands that fits the capacities (so the
    achievable min–max utilization for the given matrix is [1/lambda]),
    and the per-edge flows (per prefix) are what [Decompose] turns into
    per-router split requirements for Fibbing to install. *)

type commodity = {
  src : Netgraph.Graph.node;
  dst : Netgraph.Graph.node;  (** Egress router of the prefix. *)
  prefix : Igp.Lsa.prefix;
  demand : float;  (** Positive. *)
}

type result = {
  lambda : float;
      (** Max concurrent throughput factor: all demands scaled by
          [lambda] are simultaneously routable. [>= 1.] means the matrix
          fits; min–max utilization = [1. /. lambda]. *)
  flows : (Igp.Lsa.prefix * ((Netgraph.Graph.node * Netgraph.Graph.node) * float) list) list;
      (** Per prefix, flow on each directed edge for the {e unscaled}
          demands (i.e. already divided by lambda... see [solve]). Flows
          are for routing the original demand of each commodity. *)
}

val solve :
  ?epsilon:float ->
  Netgraph.Graph.t ->
  capacities:(Netgraph.Graph.node * Netgraph.Graph.node -> float) ->
  commodity list ->
  result
(** [epsilon] (default 0.1) trades accuracy for speed; the returned
    [lambda] is within (1−ε)³ of optimal. Raises [Invalid_argument] on
    non-positive demands/capacities or an unroutable commodity. *)

val max_utilization :
  Netgraph.Graph.t ->
  capacities:(Netgraph.Graph.node * Netgraph.Graph.node -> float) ->
  result ->
  float
(** Maximum link utilization if the original demands are routed along
    the result's (normalized) flow pattern. *)
