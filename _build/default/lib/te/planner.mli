(** Offline what-if planning.

    The paper's framing: without fine-grained control, operators "either
    vastly over-provision their networks ... or risk service
    disruption". This module shows the third option concretely: for a
    demand matrix and a set of what-if scenarios (every single-link
    failure, say), precompute the Fibbing plan that keeps utilization
    near optimal in each scenario. The controller can then install the
    matching plan the moment a failure is detected, instead of
    recomputing under pressure — Fibbing's answer to MPLS facility
    backup, with no pre-signaled tunnels.

    Single-prefix demands only (the demo's setting); multi-prefix
    planning composes by calling [prepare] per prefix. *)

type scenario = No_failure | Link_failure of Netsim.Link.t

val pp_scenario : Netgraph.Graph.t -> Format.formatter -> scenario -> unit

val single_link_failures : Netgraph.Graph.t -> scenario list
(** [No_failure] plus one [Link_failure] per undirected link whose
    removal keeps the graph connected (partitions cannot be planned
    around). *)

type entry = {
  scenario : scenario;
  igp_utilization : float;
      (** Max link utilization under plain IGP routing in this
          scenario. *)
  planned_utilization : float;
      (** Same, with the precomputed plan installed. *)
  optimal_utilization : float;  (** The (1−ε) FPTAS bound. *)
  plan : Fibbing.Augmentation.plan option;
      (** [None] when plain IGP already matches the optimum (no lie
          needed) or when compilation honestly failed (see [note]). *)
  note : string option;  (** Compilation failure reason, if any. *)
}

val prepare :
  ?epsilon:float ->
  ?max_entries:int ->
  Igp.Network.t ->
  demands:Netsim.Loadmap.demand list ->
  capacity:float ->
  scenarios:scenario list ->
  entry list
(** For each scenario: fail the link on a clone, measure plain-IGP
    utilization, compute the optimal min–max flow for [demands]
    (uniform link [capacity]), compile it to a verified plan, and
    measure the utilization the plan realizes. Demands must target a
    single announced prefix; raises [Invalid_argument] otherwise. *)

val worst_case : entry list -> entry
(** The scenario with the highest [planned_utilization] — what the
    network must be provisioned for {e with} Fibbing. Raises
    [Invalid_argument] on the empty list. *)
