type entry = {
  src : Netgraph.Graph.node;
  prefix : Igp.Lsa.prefix;
  demand : float;
}

type t = ((Netgraph.Graph.node * Igp.Lsa.prefix) * float) list
(* Aggregated, sorted by (prefix, src). *)

let sort_key ((src, prefix), _) = (prefix, src)

let of_entries raw =
  let table = Hashtbl.create 16 in
  List.iter
    (fun { src; prefix; demand } ->
      if demand < 0. then invalid_arg "Matrix.of_entries: negative demand";
      let key = (src, prefix) in
      Hashtbl.replace table key
        (demand +. Option.value ~default:0. (Hashtbl.find_opt table key)))
    raw;
  Hashtbl.to_seq table |> List.of_seq
  |> List.sort (fun a b -> compare (sort_key a) (sort_key b))

let entries t = List.map (fun ((src, prefix), demand) -> { src; prefix; demand }) t

let demand t ~src ~prefix =
  Option.value ~default:0. (List.assoc_opt (src, prefix) t)

let total t = List.fold_left (fun acc (_, d) -> acc +. d) 0. t

let scale t factor = List.map (fun (key, d) -> (key, d *. factor)) t

let add a b =
  of_entries (entries a @ entries b)

let prefixes t = List.sort_uniq compare (List.map (fun ((_, p), _) -> p) t)

let to_demands t =
  List.map
    (fun ((src, prefix), amount) -> { Netsim.Loadmap.src; prefix; amount })
    t

let of_flows flows =
  of_entries
    (List.map
       (fun (f : Netsim.Flow.t) ->
         { src = f.src; prefix = f.prefix; demand = f.demand })
       flows)
