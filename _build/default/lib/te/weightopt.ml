module Graph = Netgraph.Graph

type outcome = {
  max_utilization : float;
  initial_utilization : float;
  changed_weights : ((Graph.node * Graph.node) * int * int) list;
  evaluations : int;
}

let evaluate net demands caps =
  match Netsim.Loadmap.propagate net demands with
  | exception Netsim.Loadmap.Forwarding_loop _ -> infinity
  | exception Netsim.Loadmap.Unreachable _ -> infinity
  | loads ->
    (match Netsim.Loadmap.max_utilization loads caps with
    | None -> 0.
    | Some (_, u) -> u)

let optimize ?(max_weight = 8) ?(max_rounds = 8) net demands caps =
  if max_weight < 1 then invalid_arg "Weightopt.optimize: max_weight";
  let g = Igp.Network.graph net in
  let original = Hashtbl.create 32 in
  let undirected =
    List.filter (fun (u, v, _) -> u < v) (Graph.edges g)
  in
  List.iter (fun (u, v, w) -> Hashtbl.replace original (u, v) w) (Graph.edges g);
  let initial_utilization = evaluate net demands caps in
  let best = ref initial_utilization in
  let evaluations = ref 0 in
  let set_both u v w =
    Igp.Network.set_weight net u v ~weight:w;
    Igp.Network.set_weight net v u ~weight:w
  in
  let improved = ref true and round = ref 0 in
  while !improved && !round < max_rounds do
    improved := false;
    incr round;
    List.iter
      (fun (u, v, _) ->
        let current = Graph.weight_exn g u v in
        let best_w = ref current in
        for w = 1 to max_weight do
          if w <> current then begin
            set_both u v w;
            incr evaluations;
            let objective = evaluate net demands caps in
            if objective < !best -. 1e-9 then begin
              best := objective;
              best_w := w
            end
          end
        done;
        set_both u v !best_w;
        if !best_w <> current then improved := true)
      undirected
  done;
  let changed_weights =
    Graph.fold_edges g ~init:[] ~f:(fun acc u v w ->
        let before = Hashtbl.find original (u, v) in
        if before <> w then (((u, v), before, w)) :: acc else acc)
    |> List.rev
  in
  {
    max_utilization = !best;
    initial_utilization;
    changed_weights;
    evaluations = !evaluations;
  }

let apply_cost net outcome =
  List.fold_left
    (fun acc ((u, _), _, _) ->
      Igp.Flooding.add acc (Igp.Flooding.flood (Igp.Network.graph net) ~origin:u))
    Igp.Flooding.zero outcome.changed_weights
