(** Demand-oblivious multipath spreading.

    A third point between "single shortest path" and "optimal for the
    measured demands": spread each commodity over its [k] shortest
    loopless paths with weights inversely proportional to path cost,
    regardless of what the demands are. Operators deploy such schemes
    precisely because flash crowds are unpredictable; the TOPT/TZOO
    experiments show what that robustness costs against Fibbing's
    demand-aware reaction. *)

type flows = (Igp.Lsa.prefix * ((Netgraph.Graph.node * Netgraph.Graph.node) * float) list) list
(** Per prefix, flow on each directed edge (same shape as [Mcf.result]'s
    flows). *)

val spread :
  ?k:int -> Netgraph.Graph.t -> Mcf.commodity list -> flows
(** Default [k] is 3. A commodity with fewer than [k] loopless paths
    uses what exists; an unroutable commodity raises
    [Invalid_argument]. *)

val max_utilization :
  capacities:(Netgraph.Graph.node * Netgraph.Graph.node -> float) ->
  flows ->
  float
(** Maximum link utilization of the spread flows. *)
