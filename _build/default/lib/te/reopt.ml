let for_controller : Fibbing.Controller.reoptimizer =
 fun net ~prefix ~capacities ~demands ~egress ->
  let g = Igp.Network.graph net in
  let commodities =
    List.map
      (fun (src, demand) -> { Mcf.src; dst = egress; prefix; demand })
      demands
  in
  match Mcf.solve ~epsilon:0.1 g ~capacities commodities with
  | exception Invalid_argument _ -> []
  | result ->
    (match List.assoc_opt prefix result.Mcf.flows with
    | None -> []
    | Some edge_flows ->
      (Decompose.to_requirements net ~prefix edge_flows).Fibbing.Requirements
      .routers)
