type flows =
  (Igp.Lsa.prefix * ((Netgraph.Graph.node * Netgraph.Graph.node) * float) list) list

let spread ?(k = 3) g commodities =
  if k < 1 then invalid_arg "Oblivious.spread: k must be >= 1";
  let per_prefix = Hashtbl.create 4 in
  List.iter
    (fun (c : Mcf.commodity) ->
      let paths = Netgraph.Paths.k_shortest g ~k ~source:c.src ~target:c.dst in
      if paths = [] then invalid_arg "Oblivious.spread: unroutable commodity";
      (* Weight each path by the inverse of its cost. *)
      let weights =
        List.map
          (fun p -> 1. /. float_of_int (max 1 (Netgraph.Paths.cost g p)))
          paths
      in
      let total = List.fold_left ( +. ) 0. weights in
      let table =
        match Hashtbl.find_opt per_prefix c.prefix with
        | Some t -> t
        | None ->
          let t = Hashtbl.create 16 in
          Hashtbl.replace per_prefix c.prefix t;
          t
      in
      List.iter2
        (fun path weight ->
          let amount = c.demand *. weight /. total in
          let rec walk = function
            | u :: (v :: _ as rest) ->
              Hashtbl.replace table (u, v)
                (amount
                +. Option.value ~default:0. (Hashtbl.find_opt table (u, v)));
              walk rest
            | _ -> ()
          in
          walk path)
        paths weights)
    commodities;
  Hashtbl.fold
    (fun prefix table acc ->
      let edge_flows =
        Hashtbl.to_seq table |> List.of_seq
        |> List.filter (fun (_, f) -> f > 1e-12)
        |> List.sort compare
      in
      (prefix, edge_flows) :: acc)
    per_prefix []
  |> List.sort compare

let max_utilization ~capacities flows =
  let loads = Hashtbl.create 64 in
  List.iter
    (fun (_, edge_flows) ->
      List.iter
        (fun (e, f) ->
          Hashtbl.replace loads e
            (f +. Option.value ~default:0. (Hashtbl.find_opt loads e)))
        edge_flows)
    flows;
  Hashtbl.fold (fun e load acc -> max acc (load /. capacities e)) loads 0.
