lib/scenarios/demo.mli: Fibbing Igp Kit Netgraph Netsim Video
