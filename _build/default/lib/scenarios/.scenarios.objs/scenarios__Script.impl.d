lib/scenarios/script.ml: Fibbing Format Igp Kit List Netgraph Netsim Option Printf Result String Te Video
