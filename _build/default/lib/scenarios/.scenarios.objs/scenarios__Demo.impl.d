lib/scenarios/demo.ml: Fibbing Igp List Netgraph Netsim Video
