lib/scenarios/script.mli: Format
