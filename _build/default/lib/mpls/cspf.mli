(** Constrained shortest path first, as used by RSVP-TE head ends.

    Finds the IGP-shortest path that still has at least the requested
    bandwidth available on every link, given current reservations. *)

val path :
  Netgraph.Graph.t ->
  capacities:Netsim.Link.capacities ->
  reserved:(Netsim.Link.t -> float) ->
  bandwidth:float ->
  src:Netgraph.Graph.node ->
  dst:Netgraph.Graph.node ->
  Netgraph.Graph.node list option
(** [None] when no path with sufficient residual bandwidth exists. Ties
    between equal-cost feasible paths break towards the lexicographically
    smallest node sequence (deterministic). *)
