type t = {
  targets : (Tunnels.tunnel * float) list; (* normalized weights *)
  assigned : (int, Tunnels.tunnel * float) Hashtbl.t; (* flow -> tunnel, demand *)
}

let create weighted =
  if weighted = [] then invalid_arg "Splitter.create: no tunnels";
  List.iter
    (fun (_, w) -> if w <= 0. then invalid_arg "Splitter.create: non-positive weight")
    weighted;
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0. weighted in
  {
    targets = List.map (fun (tunnel, w) -> (tunnel, w /. total)) weighted;
    assigned = Hashtbl.create 64;
  }

let shares t =
  List.map
    (fun ((tunnel : Tunnels.tunnel), _) ->
      let share =
        Hashtbl.fold
          (fun _ ((assigned : Tunnels.tunnel), demand) acc ->
            if assigned.id = tunnel.id then acc +. demand else acc)
          t.assigned 0.
      in
      (tunnel, share))
    t.targets

let assign t ~flow_id ~demand =
  match Hashtbl.find_opt t.assigned flow_id with
  | Some (tunnel, _) -> tunnel (* sticky *)
  | None ->
    let current = shares t in
    let total =
      List.fold_left (fun acc (_, s) -> acc +. s) 0. current +. demand
    in
    (* Largest deficit against target share once this flow lands. *)
    let best =
      List.fold_left
        (fun acc (tunnel, weight) ->
          let share =
            Option.value ~default:0.
              (List.find_map
                 (fun ((tl : Tunnels.tunnel), s) ->
                   if tl.id = tunnel.Tunnels.id then Some s else None)
                 current)
          in
          let deficit = (weight *. total) -. share in
          match acc with
          | Some (_, best_deficit) when best_deficit >= deficit -> acc
          | Some _ | None -> Some (tunnel, deficit))
        None t.targets
    in
    (match best with
    | None -> assert false (* targets is non-empty *)
    | Some (tunnel, _) ->
      Hashtbl.replace t.assigned flow_id (tunnel, demand);
      tunnel)

let release t ~flow_id = Hashtbl.remove t.assigned flow_id

let state_entries t = Hashtbl.length t.assigned

let realized_fractions t =
  let current = shares t in
  let total = List.fold_left (fun acc (_, s) -> acc +. s) 0. current in
  if total <= 0. then List.map (fun (tunnel, _) -> (tunnel, 0.)) current
  else List.map (fun (tunnel, s) -> (tunnel, s /. total)) current
