module Graph = Netgraph.Graph

let path g ~capacities ~reserved ~bandwidth ~src ~dst =
  (* Prune links lacking residual bandwidth, then ordinary SPF. *)
  let pruned = Graph.copy g in
  List.iter
    (fun (u, v, _) ->
      let residual = Netsim.Link.capacity capacities (u, v) -. reserved (u, v) in
      if residual < bandwidth then Graph.remove_edge pruned u v)
    (Graph.edges g);
  match Netgraph.Paths.all_shortest ~limit:1 pruned ~source:src ~target:dst with
  | [] -> None
  | p :: _ -> Some p
