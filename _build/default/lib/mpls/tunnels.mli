(** RSVP-TE tunnel state and overhead accounting.

    The paper (§2) contrasts Fibbing with "MPLS and RSVP-TE [which]
    introduce overhead on both the control and data planes, by
    establishing a potentially-high number of tunnels, encapsulating
    packets, and performing stateful uneven load-balancing". This module
    makes those overheads measurable:

    - control plane: Path/Resv messages at setup and soft-state refreshes
      (one Path + one Resv per hop per refresh period);
    - per-router state: every transit router keeps per-tunnel state;
    - data plane: every packet grows by the MPLS label stack, and the
      head end keeps per-tunnel flow-to-tunnel assignment state for
      unequal splitting. *)

type tunnel = {
  id : int;
  head : Netgraph.Graph.node;
  tail : Netgraph.Graph.node;
  path : Netgraph.Graph.node list;
  bandwidth : float;  (** Reserved, bytes/s. *)
}

type t

val create : Netgraph.Graph.t -> Netsim.Link.capacities -> t

val establish :
  t ->
  head:Netgraph.Graph.node ->
  tail:Netgraph.Graph.node ->
  bandwidth:float ->
  (tunnel, string) result
(** CSPF placement honouring existing reservations, reserving bandwidth,
    and accounting signaling (one Path + one Resv message per hop). *)

val teardown : t -> int -> unit
(** Release a tunnel's reservation (accounts PathTear messages). Raises
    [Not_found] on unknown id. *)

val tunnels : t -> tunnel list

val reserved : t -> Netsim.Link.t -> float

val signaling_messages : t -> int
(** Cumulative setup/teardown messages so far. *)

val refresh_messages : t -> period:float -> duration:float -> int
(** Soft-state refresh traffic for keeping the current tunnels up for
    [duration] seconds with the standard refresh [period] (30 s). *)

val router_state_entries : t -> (Netgraph.Graph.node * int) list
(** Per router, the number of tunnels it keeps state for (head, transit
    and tail all count), descending. *)

val total_state : t -> int

val encap_overhead_bytes :
  t -> packet_size:int -> label_bytes:int -> volume:float -> float
(** Extra bytes on the wire for [volume] bytes of payload carried through
    tunnels: one [label_bytes] MPLS shim per packet of [packet_size]. *)
