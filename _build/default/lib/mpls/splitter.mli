(** Head-end unequal load balancing across parallel tunnels.

    RSVP-TE achieves uneven ratios by keeping per-flow state at the head
    end: each new flow is assigned to the tunnel whose current share is
    furthest below its target weight. This gets arbitrarily precise
    ratios — the paper's point is the cost: per-flow state at the head
    end and per-packet encapsulation, where Fibbing needs neither. *)

type t

val create : (Tunnels.tunnel * float) list -> t
(** Tunnels with positive target weights (normalized internally). Raises
    [Invalid_argument] when empty or weights are non-positive. *)

val assign : t -> flow_id:int -> demand:float -> Tunnels.tunnel
(** Sticky deficit-based assignment; remembers the flow. *)

val release : t -> flow_id:int -> unit
(** Forget a finished flow (no-op when unknown). *)

val state_entries : t -> int
(** Currently tracked flows — the "stateful" cost. *)

val shares : t -> (Tunnels.tunnel * float) list
(** Current demand share per tunnel (sums to the total assigned demand). *)

val realized_fractions : t -> (Tunnels.tunnel * float) list
