module Graph = Netgraph.Graph

type tunnel = {
  id : int;
  head : Graph.node;
  tail : Graph.node;
  path : Graph.node list;
  bandwidth : float;
}

type t = {
  graph : Graph.t;
  capacities : Netsim.Link.capacities;
  mutable next_id : int;
  mutable live : tunnel list;
  mutable signaling : int;
}

let create graph capacities =
  { graph; capacities; next_id = 0; live = []; signaling = 0 }

let tunnels t = t.live

let reserved t link =
  List.fold_left
    (fun acc tunnel ->
      let rec on_path = function
        | u :: (v :: _ as rest) -> (u, v) = link || on_path rest
        | _ -> false
      in
      if on_path tunnel.path then acc +. tunnel.bandwidth else acc)
    0. t.live

let hops path = max 0 (List.length path - 1)

let establish t ~head ~tail ~bandwidth =
  if bandwidth <= 0. then Error "bandwidth must be positive"
  else begin
    match
      Cspf.path t.graph ~capacities:t.capacities ~reserved:(reserved t)
        ~bandwidth ~src:head ~dst:tail
    with
    | None -> Error "no path with sufficient residual bandwidth"
    | Some path ->
      let tunnel = { id = t.next_id; head; tail; path; bandwidth } in
      t.next_id <- t.next_id + 1;
      t.live <- t.live @ [ tunnel ];
      (* One Path downstream + one Resv upstream per hop. *)
      t.signaling <- t.signaling + (2 * hops path);
      Ok tunnel
  end

let teardown t id =
  match List.find_opt (fun tunnel -> tunnel.id = id) t.live with
  | None -> raise Not_found
  | Some tunnel ->
    t.live <- List.filter (fun tl -> tl.id <> id) t.live;
    t.signaling <- t.signaling + hops tunnel.path (* PathTear *)

let signaling_messages t = t.signaling

let refresh_messages t ~period ~duration =
  if period <= 0. then invalid_arg "Tunnels.refresh_messages: period";
  let cycles = int_of_float (duration /. period) in
  List.fold_left
    (fun acc tunnel -> acc + (2 * hops tunnel.path * cycles))
    0 t.live

let router_state_entries t =
  let table = Hashtbl.create 16 in
  List.iter
    (fun tunnel ->
      List.iter
        (fun router ->
          Hashtbl.replace table router
            (1 + Option.value ~default:0 (Hashtbl.find_opt table router)))
        tunnel.path)
    t.live;
  Hashtbl.fold (fun router count acc -> (router, count) :: acc) table []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let total_state t =
  List.fold_left (fun acc (_, count) -> acc + count) 0 (router_state_entries t)

let encap_overhead_bytes _t ~packet_size ~label_bytes ~volume =
  if packet_size <= 0 then invalid_arg "Tunnels.encap_overhead_bytes: packet size";
  volume /. float_of_int packet_size *. float_of_int label_bytes
