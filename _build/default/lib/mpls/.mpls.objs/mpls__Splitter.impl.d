lib/mpls/splitter.ml: Hashtbl List Option Tunnels
