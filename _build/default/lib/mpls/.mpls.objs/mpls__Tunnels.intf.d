lib/mpls/tunnels.mli: Netgraph Netsim
