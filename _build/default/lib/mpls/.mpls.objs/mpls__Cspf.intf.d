lib/mpls/cspf.mli: Netgraph Netsim
