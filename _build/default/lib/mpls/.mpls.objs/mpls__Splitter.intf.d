lib/mpls/splitter.mli: Tunnels
