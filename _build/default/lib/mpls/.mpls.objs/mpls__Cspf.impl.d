lib/mpls/cspf.ml: List Netgraph Netsim
