lib/mpls/tunnels.ml: Cspf Hashtbl List Netgraph Netsim Option
