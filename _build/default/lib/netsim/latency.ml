type config = {
  ms_per_weight : float;
  service_ms : float;
  max_queue_ms : float;
}

let default_config = { ms_per_weight = 5.; service_ms = 0.12; max_queue_ms = 50. }

let link_delay_ms ?(config = default_config) g sim link =
  let u, v = link in
  let weight = Option.value ~default:1 (Netgraph.Graph.weight g u v) in
  let propagation = float_of_int weight *. config.ms_per_weight in
  let rate =
    Option.value ~default:0. (List.assoc_opt link (Sim.current_link_rates sim))
  in
  let utilization = rate /. Link.capacity (Sim.capacities sim) link in
  (* M/M/1 sojourn: service / (1 - rho), capped by the buffer. *)
  let queueing =
    if utilization >= 1. then config.max_queue_ms
    else min config.max_queue_ms (config.service_ms /. (1. -. utilization))
  in
  propagation +. queueing

let path_delay_ms ?(config = default_config) sim path =
  let g = Igp.Network.graph (Sim.network sim) in
  let rec walk acc = function
    | u :: (v :: _ as rest) ->
      walk (acc +. link_delay_ms ~config g sim (u, v)) rest
    | _ -> acc
  in
  walk 0. path

let flow_delay_ms ?(config = default_config) sim id =
  Option.map (path_delay_ms ~config sim) (Sim.flow_path sim id)

let mean_flow_delay_ms ?(config = default_config) sim =
  let delays =
    List.filter_map
      (fun (flow : Flow.t) -> flow_delay_ms ~config sim flow.id)
      (Sim.active_flows sim)
  in
  Kit.Stats.mean delays
