lib/netsim/events.ml: Kit List Option
