lib/netsim/loadmap.ml: Array Format Hashtbl Igp Link List Netgraph Option Queue
