lib/netsim/hashing.mli: Igp Netgraph
