lib/netsim/link.mli: Netgraph
