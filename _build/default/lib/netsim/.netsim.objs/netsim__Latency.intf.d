lib/netsim/latency.mli: Link Netgraph Sim
