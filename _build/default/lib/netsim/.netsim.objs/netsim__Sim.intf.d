lib/netsim/sim.mli: Aimd Flow Igp Kit Link Monitor Netgraph
