lib/netsim/hashing.ml: Igp Int64 List Netgraph
