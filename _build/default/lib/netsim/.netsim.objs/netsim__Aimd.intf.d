lib/netsim/aimd.mli: Fairshare Link
