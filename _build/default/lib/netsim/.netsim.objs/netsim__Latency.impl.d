lib/netsim/latency.ml: Flow Igp Kit Link List Netgraph Option Sim
