lib/netsim/fairshare.ml: Array Flow Hashtbl Link List Option
