lib/netsim/link.ml: Hashtbl List Netgraph Option Printf Stdlib
