lib/netsim/flow.ml: Igp Netgraph
