lib/netsim/events.mli:
