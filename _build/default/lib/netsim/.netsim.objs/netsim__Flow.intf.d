lib/netsim/flow.mli: Igp Netgraph
