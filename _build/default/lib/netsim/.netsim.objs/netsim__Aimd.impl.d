lib/netsim/aimd.ml: Fairshare Flow Hashtbl Link List Option
