lib/netsim/monitor.ml: Hashtbl Kit Link List Option
