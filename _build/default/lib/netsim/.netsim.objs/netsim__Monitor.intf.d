lib/netsim/monitor.mli: Link
