lib/netsim/loadmap.mli: Format Igp Link Netgraph
