lib/netsim/sim.ml: Aimd Array Events Fairshare Flow Hashing Hashtbl Igp Kit Link List Monitor Netgraph Option Printf
