lib/netsim/fairshare.mli: Flow Link
