type t = Netgraph.Graph.node * Netgraph.Graph.node

let compare = Stdlib.compare

let name g (u, v) =
  Printf.sprintf "%s-%s" (Netgraph.Graph.name g u) (Netgraph.Graph.name g v)

type capacities = {
  default : float;
  table : (t, float) Hashtbl.t;
}

let capacities ~default =
  if default <= 0. then invalid_arg "Link.capacities: default must be positive";
  { default; table = Hashtbl.create 16 }

let set c link value =
  if value <= 0. then invalid_arg "Link.set: capacity must be positive";
  Hashtbl.replace c.table link value

let set_link c (u, v) value =
  set c (u, v) value;
  set c (v, u) value

let capacity c link =
  Option.value ~default:c.default (Hashtbl.find_opt c.table link)

let overrides c = List.of_seq (Hashtbl.to_seq c.table)
