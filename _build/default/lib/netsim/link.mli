(** Directed links and their capacities. *)

type t = Netgraph.Graph.node * Netgraph.Graph.node
(** A directed link [(u, v)]. The symmetric reverse direction is a
    distinct link with its own capacity and load. *)

val compare : t -> t -> int

val name : Netgraph.Graph.t -> t -> string
(** Renders "A-R1". *)

type capacities

val capacities : default:float -> capacities
(** Capacity table; links not explicitly set have capacity [default]
    (bytes/s). [default] must be positive. *)

val set : capacities -> t -> float -> unit
(** Override one direction's capacity. Must be positive. *)

val set_link : capacities -> t -> float -> unit
(** Override both directions. *)

val capacity : capacities -> t -> float

val overrides : capacities -> (t * float) list
