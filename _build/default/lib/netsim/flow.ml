type t = {
  id : int;
  src : Netgraph.Graph.node;
  prefix : Igp.Lsa.prefix;
  demand : float;
  start_time : float;
  duration : float;
}

let make ~id ~src ~prefix ~demand ?(start_time = 0.) ?(duration = infinity) () =
  if demand <= 0. then invalid_arg "Flow.make: demand must be positive";
  if start_time < 0. then invalid_arg "Flow.make: negative start time";
  if duration <= 0. then invalid_arg "Flow.make: duration must be positive";
  { id; src; prefix; demand; start_time; duration }

let end_time t = t.start_time +. t.duration

let active_at t time = time >= t.start_time && time < end_time t
