type t = {
  initial_fraction : float;
  increase_per_s : float;
  decrease_factor : float;
  rates : (int, float) Hashtbl.t;
}

let create ?(initial_fraction = 0.1) ?(increase_per_s = 0.25)
    ?(decrease_factor = 0.7) () =
  if initial_fraction <= 0. || initial_fraction > 1. then
    invalid_arg "Aimd.create: initial_fraction in (0, 1]";
  if increase_per_s <= 0. then invalid_arg "Aimd.create: increase_per_s";
  if decrease_factor <= 0. || decrease_factor >= 1. then
    invalid_arg "Aimd.create: decrease_factor in (0, 1)";
  { initial_fraction; increase_per_s; decrease_factor; rates = Hashtbl.create 64 }

let rate t id = Option.value ~default:0. (Hashtbl.find_opt t.rates id)

let forget t id = Hashtbl.remove t.rates id

let update t ~dt ~capacities routes =
  (* Initialize newcomers. *)
  List.iter
    (fun (r : Fairshare.route) ->
      if not (Hashtbl.mem t.rates r.flow.Flow.id) then
        Hashtbl.replace t.rates r.flow.Flow.id
          (t.initial_fraction *. r.flow.Flow.demand))
    routes;
  (* Offered load per link at current rates. *)
  let load : (Link.t, float) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (r : Fairshare.route) ->
      let rate = rate t r.flow.Flow.id in
      List.iter
        (fun link ->
          Hashtbl.replace load link
            (rate +. Option.value ~default:0. (Hashtbl.find_opt load link)))
        (List.sort_uniq Link.compare r.links))
    routes;
  let congested link =
    Option.value ~default:0. (Hashtbl.find_opt load link)
    > Link.capacity capacities link +. 1e-9
  in
  (* AIMD step. *)
  List.map
    (fun (r : Fairshare.route) ->
      let id = r.flow.Flow.id in
      let current = rate t id in
      let next =
        if List.exists congested r.links then current *. t.decrease_factor
        else
          min r.flow.Flow.demand
            (current +. (t.increase_per_s *. r.flow.Flow.demand *. dt))
      in
      Hashtbl.replace t.rates id next;
      (id, next))
    routes
