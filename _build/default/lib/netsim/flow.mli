(** Traffic flows.

    A flow is a long-lived transport session (a video stream in the
    paper's demo) entering the network at an ingress router and destined
    to an IGP prefix. [demand] caps its rate (the video bitrate); the
    fluid allocator may give it less under congestion. *)

type t = {
  id : int;  (** Unique; also the ECMP hash input. *)
  src : Netgraph.Graph.node;  (** Ingress router. *)
  prefix : Igp.Lsa.prefix;
  demand : float;  (** Rate cap, bytes/s. Positive. *)
  start_time : float;
  duration : float;  (** [infinity] for open-ended flows. *)
}

val make :
  id:int ->
  src:Netgraph.Graph.node ->
  prefix:Igp.Lsa.prefix ->
  demand:float ->
  ?start_time:float ->
  ?duration:float ->
  unit ->
  t
(** Defaults: [start_time = 0.], [duration = infinity]. Raises
    [Invalid_argument] on non-positive demand or negative times. *)

val end_time : t -> float

val active_at : t -> float -> bool
(** Active on [\[start_time, end_time)). *)
