(** Per-flow ECMP hashing.

    Routers hash a flow's identifier (in reality the 5-tuple) to pick one
    FIB entry; the choice is stable for a flow at a given router while the
    entry list is unchanged, so packets of one flow stay on one path. The
    hash is independent across routers (each router salts with its own
    id), matching real ECMP behaviour. Multiplicity-weighted entries are
    selected proportionally — the mechanism behind Fibbing's uneven
    splits. *)

val select :
  flow_id:int -> router:Netgraph.Graph.node -> Igp.Fib.t -> Netgraph.Graph.node option
(** The next hop this router forwards this flow to; [None] when the FIB
    is local or has no entries. *)

val route_with :
  fib:(Netgraph.Graph.node -> Igp.Fib.t option) ->
  max_hops:int ->
  flow_id:int ->
  src:Netgraph.Graph.node ->
  Netgraph.Graph.node list option
(** Chain per-router hash decisions over an arbitrary (already
    prefix-specialized) FIB view — e.g. the mixed old/new view during a
    reconvergence. [None] on unreachability or when more than [max_hops]
    hops are taken (a forwarding loop). *)

val route :
  Igp.Network.t ->
  flow_id:int ->
  src:Netgraph.Graph.node ->
  Igp.Lsa.prefix ->
  Netgraph.Graph.node list option
(** [route_with] over the network's converged FIBs. [None] if the prefix
    is unreachable or a forwarding loop is detected (possible with
    inconsistent fake injections). *)
