(** Max-min fair fluid bandwidth allocation.

    Long-lived TCP flows sharing bottleneck links converge (to first
    order) to the max-min fair allocation; this module computes it by
    progressive filling: all flows' rates grow together, a flow freezes
    when it reaches its demand cap (video bitrate) or when one of its
    links saturates. This is the bandwidth model behind the Fig. 2
    throughput curves. *)

type route = {
  flow : Flow.t;
  links : Link.t list;  (** The directed links of the flow's path. *)
}

val allocate : Link.capacities -> route list -> (int * float) list
(** [(flow id, rate)] for every route, in input order. A flow with an
    empty link list (locally delivered) gets its full demand. Flow ids
    must be distinct; raises [Invalid_argument] otherwise. *)

val link_throughput : route list -> (int * float) list -> (Link.t * float) list
(** Aggregate per-link throughput implied by an allocation, sorted by
    link. *)
