(** Path latency estimation.

    The paper motivates Fibbing with interactive applications' "hard
    constraints on ... losses or delay". This module estimates per-flow
    one-way delay from the simulation state: per-link propagation
    (derived from the IGP weight, one weight unit ~ [ms_per_weight]) plus
    an M/M/1-style queueing term that explodes as utilization approaches
    1 — so decongesting a link visibly improves delay, not only
    throughput. *)

type config = {
  ms_per_weight : float;  (** Propagation ms per IGP weight unit (5.). *)
  service_ms : float;
      (** Mean packet service time at an idle link (0.12 ms ~ 1500 B at
          100 Mbps). *)
  max_queue_ms : float;
      (** Cap on the queueing term as utilization -> 1 (50 ms,
          modelling a finite buffer). *)
}

val default_config : config

val link_delay_ms :
  ?config:config -> Netgraph.Graph.t -> Sim.t -> Link.t -> float
(** Current one-way delay of a link: propagation + queueing at the
    link's present utilization. *)

val path_delay_ms :
  ?config:config -> Sim.t -> Netgraph.Graph.node list -> float
(** Sum over a path's links. A single-node path has zero delay. *)

val flow_delay_ms : ?config:config -> Sim.t -> int -> float option
(** Current one-way delay of an active flow's path; [None] if the flow
    is not routed. *)

val mean_flow_delay_ms : ?config:config -> Sim.t -> float
(** Mean over all routed active flows; [0.] when none. *)
