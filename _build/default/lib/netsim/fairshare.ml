type route = { flow : Flow.t; links : Link.t list }

let epsilon = 1e-9

let allocate capacities routes =
  let ids = List.map (fun r -> r.flow.Flow.id) routes in
  if List.length (List.sort_uniq compare ids) <> List.length ids then
    invalid_arg "Fairshare.allocate: duplicate flow ids";
  let routes_arr = Array.of_list routes in
  let n = Array.length routes_arr in
  let rates = Array.make n 0. in
  let frozen = Array.make n false in
  (* Distinct links and, per link, the indices of flows crossing it. *)
  let link_flows : (Link.t, int list) Hashtbl.t = Hashtbl.create 32 in
  Array.iteri
    (fun i r ->
      List.iter
        (fun link ->
          let existing = Option.value ~default:[] (Hashtbl.find_opt link_flows link) in
          Hashtbl.replace link_flows link (i :: existing))
        (List.sort_uniq Link.compare r.links))
    routes_arr;
  let remaining : (Link.t, float) Hashtbl.t = Hashtbl.create 32 in
  Hashtbl.iter
    (fun link _ -> Hashtbl.replace remaining link (Link.capacity capacities link))
    link_flows;
  (* Flows with no links are only demand-capped. *)
  Array.iteri
    (fun i r ->
      if r.links = [] then begin
        rates.(i) <- r.flow.Flow.demand;
        frozen.(i) <- true
      end)
    routes_arr;
  let level = ref 0. in
  let unfrozen_on link =
    List.filter (fun i -> not frozen.(i))
      (Option.value ~default:[] (Hashtbl.find_opt link_flows link))
  in
  let any_unfrozen () = Array.exists (fun f -> not f) frozen in
  while any_unfrozen () do
    (* Level at which the tightest link saturates. *)
    let link_limit = ref infinity and saturating = ref [] in
    Hashtbl.iter
      (fun link rem ->
        let count = List.length (unfrozen_on link) in
        if count > 0 then begin
          let saturation_level = !level +. (max 0. rem /. float_of_int count) in
          if saturation_level < !link_limit -. epsilon then begin
            link_limit := saturation_level;
            saturating := [ link ]
          end
          else if saturation_level < !link_limit +. epsilon then
            saturating := link :: !saturating
        end)
      remaining;
    (* Level at which the most modest flow hits its demand. *)
    let demand_limit = ref infinity in
    Array.iteri
      (fun i r ->
        if not frozen.(i) then
          demand_limit := min !demand_limit r.flow.Flow.demand)
      routes_arr;
    let target = min !link_limit !demand_limit in
    let delta = target -. !level in
    (* Consume capacity for the growth of all unfrozen flows. *)
    Hashtbl.iter
      (fun link rem ->
        let count = List.length (unfrozen_on link) in
        if count > 0 then
          Hashtbl.replace remaining link (rem -. (float_of_int count *. delta)))
      remaining;
    level := target;
    let froze = ref false in
    (* Demand-capped flows first. *)
    Array.iteri
      (fun i r ->
        if (not frozen.(i)) && r.flow.Flow.demand <= target +. epsilon then begin
          rates.(i) <- r.flow.Flow.demand;
          frozen.(i) <- true;
          froze := true
        end)
      routes_arr;
    (* Flows crossing a saturated link freeze at the fair level. *)
    if target = !link_limit then
      List.iter
        (fun link ->
          List.iter
            (fun i ->
              if not frozen.(i) then begin
                rates.(i) <- target;
                frozen.(i) <- true;
                froze := true
              end)
            (unfrozen_on link))
        !saturating;
    (* Numerical safety net: progress is guaranteed above, but if
       tolerances conspire, freeze everything at the current level. *)
    if not !froze then
      Array.iteri
        (fun i _ ->
          if not frozen.(i) then begin
            rates.(i) <- target;
            frozen.(i) <- true
          end)
        routes_arr
  done;
  Array.to_list (Array.mapi (fun i r -> (r.flow.Flow.id, rates.(i))) routes_arr)

let link_throughput routes allocation =
  let table : (Link.t, float) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun r ->
      let rate = Option.value ~default:0. (List.assoc_opt r.flow.Flow.id allocation) in
      List.iter
        (fun link ->
          let current = Option.value ~default:0. (Hashtbl.find_opt table link) in
          Hashtbl.replace table link (current +. rate))
        (List.sort_uniq Link.compare r.links))
    routes;
  Hashtbl.to_seq table |> List.of_seq
  |> List.sort (fun (a, _) (b, _) -> Link.compare a b)
