(** Time-ordered event queue for the discrete-event simulator. *)

type 'a t

val create : unit -> 'a t

val schedule : 'a t -> time:float -> 'a -> unit
(** Times may be scheduled in any order; negative times are rejected. *)

val next_time : 'a t -> float option

val pop_until : 'a t -> time:float -> (float * 'a) list
(** Remove and return every event with timestamp [<= time], in
    chronological order. *)

val is_empty : 'a t -> bool

val size : 'a t -> int
