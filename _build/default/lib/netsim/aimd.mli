(** TCP-like AIMD rate dynamics.

    [Fairshare] jumps to the max-min equilibrium instantly; real video
    sessions ramp up and back off. This model keeps a rate per flow and,
    each step, additively grows every uncongested flow towards its
    demand and multiplicatively shrinks every flow crossing a link whose
    offered load exceeds capacity. Under stationary conditions the rates
    oscillate around the fair share (the classic AIMD result); the
    simulator exposes it as an alternative allocator so the Fig. 2
    curves can be reproduced with convergence dynamics visible. *)

type t

val create :
  ?initial_fraction:float ->
  ?increase_per_s:float ->
  ?decrease_factor:float ->
  unit ->
  t
(** A new flow starts at [initial_fraction] of its demand (default 0.1);
    uncongested flows gain [increase_per_s] of their demand per second
    (default 0.25); congested flows multiply by [decrease_factor]
    (default 0.7, in (0, 1)). *)

val update :
  t -> dt:float -> capacities:Link.capacities -> Fairshare.route list ->
  (int * float) list
(** Advance one step for the given routed flows and return their rates.
    Flows unseen before are initialized; rates never exceed demand. *)

val rate : t -> int -> float
(** Current rate of a flow ([0.] if unknown). *)

val forget : t -> int -> unit
(** Drop a departed flow's state. *)
