type 'a t = 'a Kit.Heap.t

let create () = Kit.Heap.create ()

let schedule t ~time event =
  if time < 0. then invalid_arg "Events.schedule: negative time";
  Kit.Heap.push t ~priority:time event

let next_time t = Option.map fst (Kit.Heap.peek t)

let pop_until t ~time =
  let rec drain acc =
    match Kit.Heap.peek t with
    | Some (event_time, _) when event_time <= time ->
      (match Kit.Heap.pop t with
      | Some (event_time, event) -> drain ((event_time, event) :: acc)
      | None -> acc)
    | Some _ | None -> acc
  in
  List.rev (drain [])

let is_empty = Kit.Heap.is_empty

let size = Kit.Heap.size
