(* One splitmix64 round over (flow, router) gives an independent,
   deterministic per-router hash. *)
let mix flow_id router =
  let open Int64 in
  let z = add (mul (of_int flow_id) 0x9E3779B97F4A7C15L) (of_int (router * 0x85EB)) in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  to_int (shift_right_logical (logxor z (shift_right_logical z 31)) 3)

let select ~flow_id ~router (fib : Igp.Fib.t) =
  let weights = Igp.Fib.weights fib in
  let total = List.fold_left (fun acc (_, m) -> acc + m) 0 weights in
  if total = 0 then None
  else begin
    let bucket = mix flow_id router mod total in
    let rec pick remaining = function
      | [] -> None
      | (next_hop, mult) :: rest ->
        if remaining < mult then Some next_hop else pick (remaining - mult) rest
    in
    pick bucket weights
  end

let route_with ~fib ~max_hops ~flow_id ~src =
  let rec walk current hops acc =
    if hops > max_hops then None (* forwarding loop *)
    else begin
      match fib current with
      | None -> None
      | Some f ->
        if f.Igp.Fib.local then Some (List.rev (current :: acc))
        else begin
          match select ~flow_id ~router:current f with
          | None -> None
          | Some next -> walk next (hops + 1) (current :: acc)
        end
    end
  in
  walk src 0 []

let route net ~flow_id ~src prefix =
  route_with
    ~fib:(fun router -> Igp.Network.fib net ~router prefix)
    ~max_hops:(Netgraph.Graph.node_count (Igp.Network.graph net))
    ~flow_id ~src
