(** Fluid (fractional) traffic propagation.

    Where the event simulation ([Sim]) tracks individual hashed flows,
    [Loadmap] answers the aggregate question behind the paper's Fig. 1b
    and 1d: given per-ingress traffic volumes towards each prefix, and the
    routers' FIB splitting fractions, what load lands on every link? The
    traffic is treated as an infinitely divisible fluid split exactly
    according to FIB multiplicities at every hop. *)

type demand = {
  src : Netgraph.Graph.node;
  prefix : Igp.Lsa.prefix;
  amount : float;  (** Offered volume, arbitrary rate units. *)
}

exception Forwarding_loop of Igp.Lsa.prefix
(** Raised when the per-prefix forwarding graph contains a cycle through a
    loaded router (possible with inconsistent fake injections). *)

exception Unreachable of Igp.Lsa.prefix
(** Raised when a demand's ingress cannot reach its prefix. *)

type t

val propagate : Igp.Network.t -> demand list -> t
(** Push every demand through the current FIBs. *)

val load : t -> Link.t -> float
(** Load on a directed link; [0.] if the link carries nothing. *)

val loads : t -> (Link.t * float) list
(** All links with non-zero load, sorted by link. *)

val max_load : t -> (Link.t * float) option
(** The most loaded link. *)

val utilization : t -> Link.capacities -> (Link.t * float) list
(** Per-link load/capacity ratios for loaded links. *)

val max_utilization : t -> Link.capacities -> (Link.t * float) option

val pp : Netgraph.Graph.t -> Format.formatter -> t -> unit
(** Table of loaded links, descending load. *)
