(** Small statistics helpers for experiment reporting. *)

val mean : float list -> float
(** Arithmetic mean; [0.] on the empty list. *)

val variance : float list -> float
(** Population variance; [0.] on lists of length < 2. *)

val stddev : float list -> float

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0, 100\]], nearest-rank method on the
    sorted sample. Raises [Invalid_argument] on the empty list. *)

val minimum : float list -> float
(** Raises [Invalid_argument] on the empty list. *)

val maximum : float list -> float
(** Raises [Invalid_argument] on the empty list. *)

val total : float list -> float

val ewma : alpha:float -> float -> float -> float
(** [ewma ~alpha previous sample] is the exponentially weighted moving
    average update [alpha *. sample +. (1. -. alpha) *. previous].
    Requires [0. <= alpha && alpha <= 1.]. *)
