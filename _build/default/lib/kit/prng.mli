(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component of the simulator (workload generation,
    random topologies, flow hashing seeds) draws from an explicit [Prng.t]
    so that experiments are reproducible bit-for-bit from a seed. *)

type t

val create : seed:int -> t
(** [create ~seed] returns an independent generator. Two generators with
    the same seed produce the same stream. *)

val copy : t -> t
(** [copy t] is an independent generator continuing from [t]'s state. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. Requires [bound > 0.]. *)

val bool : t -> bool
(** Fair coin. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean (used for Poisson
    arrival processes). Requires [mean > 0.]. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
