(* Domain-based fork/join worker pool.

   Domains are spawned per [iter] call and always joined before it
   returns, so the pool holds no long-lived resources and needs no
   shutdown protocol. OCaml domain spawn is cheap relative to an SPF
   batch, and ephemeral domains sidestep the hazards of a persistent
   pool (domains outliving the main domain at exit, deadlocks on
   teardown).

   Work distribution is a shared atomic counter: each participant —
   helper domains plus the calling domain itself — claims the next
   index until the range is exhausted. The first exception raised by
   any participant is captured and re-raised on the caller after all
   domains have been joined; remaining indices may or may not have been
   processed when that happens. *)

type t = { domains : int }

let create ?domains () =
  let domains =
    match domains with
    | Some d -> max 1 d
    | None -> Domain.recommended_domain_count ()
  in
  { domains }

let domain_count t = t.domains

let iter t ~n f =
  if n <= 0 then ()
  else begin
    let helpers = min (t.domains - 1) (n - 1) in
    if helpers <= 0 then
      for i = 0 to n - 1 do
        f i
      done
    else begin
      let next = Atomic.make 0 in
      let failure = Atomic.make None in
      let work () =
        let continue = ref true in
        while !continue do
          let i = Atomic.fetch_and_add next 1 in
          if i >= n then continue := false
          else
            match f i with
            | () -> ()
            | exception exn ->
              let bt = Printexc.get_raw_backtrace () in
              ignore (Atomic.compare_and_set failure None (Some (exn, bt)));
              continue := false
        done
      in
      let spawned = List.init helpers (fun _ -> Domain.spawn work) in
      work ();
      List.iter Domain.join spawned;
      match Atomic.get failure with
      | None -> ()
      | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
    end
  end

let map t ~n f =
  if n <= 0 then [||]
  else begin
    let results = Array.make n None in
    iter t ~n (fun i -> results.(i) <- Some (f i));
    Array.map
      (function Some v -> v | None -> assert false (* iter covers [0, n) *))
      results
  end
