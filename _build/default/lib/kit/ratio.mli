(** Approximation of fractional splitting ratios by small integer
    multiplicities.

    ECMP hashes flows uniformly over FIB entries, so the only splitting
    ratios a router can realize are [m_i / (m_1 + ... + m_k)] for integer
    entry multiplicities [m_i >= 1]. Fibbing installs [m_i] equal-cost fake
    routes towards next hop [i]; the FIB width bounds the total
    [sum m_i]. This module finds the best bounded-total approximation. *)

val apportion : float array -> total:int -> int array
(** Largest-remainder apportionment of exactly [total] entries (each at
    least 1) to the fractions; used by callers managing their own entry
    budgets. Requires [total >= Array.length fractions] (the result may
    exceed [total] only when that lower bound forces it). *)

val approximate : max_total:int -> float array -> int array
(** [approximate ~max_total fractions] returns multiplicities [m] with
    [1 <= m.(i)], [sum m <= max_total], minimizing the maximum absolute
    error [|m.(i)/total -. fractions.(i)|].

    [fractions] must be non-empty, have non-negative entries summing to
    (approximately) 1, and satisfy [Array.length fractions <= max_total].
    Raises [Invalid_argument] otherwise. *)

val max_error : float array -> int array -> float
(** [max_error fractions m] is the maximum absolute difference between the
    desired fractions and the realized ones [m.(i) / sum m]. *)

val realized : int array -> float array
(** [realized m] are the fractions actually produced by multiplicities
    [m]. Raises [Invalid_argument] if [m] is empty or sums to 0. *)
