(** Append-only time series of (time, value) samples, used to record link
    throughput over the course of a simulation (paper Fig. 2). *)

type t

val create : name:string -> t

val name : t -> string

val add : t -> time:float -> float -> unit
(** Samples must be appended in non-decreasing time order; raises
    [Invalid_argument] otherwise. *)

val samples : t -> (float * float) list
(** All samples in chronological order. *)

val length : t -> int

val value_at : t -> float -> float
(** [value_at t time] is the most recent sample at or before [time]
    (step interpolation); [0.] before the first sample. *)

val peak : t -> float
(** Maximum recorded value; [0.] when empty. *)

val window_mean : t -> from:float -> until:float -> float
(** Mean of the samples with [from <= time < until]; [0.] if none. *)

val to_csv : ?step:float -> t list -> string
(** CSV with a header row ("time,<name>,<name>,...") and one row per
    [step] seconds (default 1.0), resampled like [pp_rows]; for feeding
    the series to external plotting tools. *)

val pp_rows : ?step:float -> Format.formatter -> t list -> unit
(** Print aligned rows [time v1 v2 ...] resampled on a common grid of
    [step] (default 1.0) seconds from time 0 to the last sample — the
    textual equivalent of the paper's Fig. 2 plot. *)
