type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64: fast, high-quality, trivially seedable. Reference:
   Steele, Lea & Flood, "Fast splittable pseudorandom number generators",
   OOPSLA 2014. *)
let bits64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let int t bound =
  assert (bound > 0);
  let mask = Int64.shift_right_logical (bits64 t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let float t bound =
  assert (bound > 0.);
  let mantissa = Int64.shift_right_logical (bits64 t) 11 in
  let unit = Int64.to_float mantissa /. 9007199254740992. (* 2^53 *) in
  unit *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~mean =
  assert (mean > 0.);
  let u = 1. -. float t 1. in
  -.mean *. log u

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
