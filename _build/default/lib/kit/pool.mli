(** Fork/join worker pool over OCaml 5 domains.

    A pool is a concurrency budget, not a set of live threads: every
    [iter]/[map] call spawns up to [domains - 1] helper domains, has the
    calling domain participate too, and joins all helpers before
    returning. Work items are claimed from a shared atomic counter, so
    uneven per-item cost balances automatically.

    The body [f] runs concurrently with itself on different indices. It
    must only touch shared state that is safe under that: read-only
    structures built before the call, or writes to disjoint slots of a
    pre-allocated array. *)

type t

val create : ?domains:int -> unit -> t
(** [create ()] sizes the pool to [Domain.recommended_domain_count ()].
    [domains] overrides it; values below 1 are clamped to 1 (purely
    sequential). *)

val domain_count : t -> int

val iter : t -> n:int -> (int -> unit) -> unit
(** [iter t ~n f] runs [f i] for every [i] in [0, n), fanned across the
    pool's domains. Returns once every index has been claimed and all
    helper domains have been joined. If any call to [f] raises, the
    first captured exception is re-raised on the caller (after joining);
    remaining indices may be skipped. *)

val map : t -> n:int -> (int -> 'a) -> 'a array
(** [map t ~n f] is [iter] collecting results: element [i] of the
    returned array is [f i]. *)
