let realized m =
  let k = Array.length m in
  if k = 0 then invalid_arg "Ratio.realized: empty";
  let total = Array.fold_left ( + ) 0 m in
  if total = 0 then invalid_arg "Ratio.realized: zero total";
  Array.map (fun mi -> float_of_int mi /. float_of_int total) m

let max_error fractions m =
  let r = realized m in
  let err = ref 0. in
  Array.iteri (fun i f -> err := max !err (abs_float (f -. r.(i)))) fractions;
  !err

(* Largest-remainder apportionment of [total] entries to the desired
   fractions, with every next hop getting at least one entry. *)
let apportion fractions total =
  let k = Array.length fractions in
  let m = Array.map (fun f -> max 1 (int_of_float (f *. float_of_int total))) fractions in
  let current = ref (Array.fold_left ( + ) 0 m) in
  (* Distribute missing entries to the largest remainders. *)
  while !current < total do
    let best = ref 0 and best_gap = ref neg_infinity in
    for i = 0 to k - 1 do
      let gap = (fractions.(i) *. float_of_int total) -. float_of_int m.(i) in
      if gap > !best_gap then begin
        best := i;
        best_gap := gap
      end
    done;
    m.(!best) <- m.(!best) + 1;
    incr current
  done;
  (* Remove surplus entries (caused by the >=1 floor) from the most
     over-served next hops that can spare one. *)
  while !current > total do
    let best = ref (-1) and best_gap = ref infinity in
    for i = 0 to k - 1 do
      if m.(i) > 1 then begin
        let gap = (fractions.(i) *. float_of_int total) -. float_of_int m.(i) in
        if gap < !best_gap then begin
          best := i;
          best_gap := gap
        end
      end
    done;
    if !best < 0 then current := total (* all at the floor; accept overshoot *)
    else begin
      m.(!best) <- m.(!best) - 1;
      decr current
    end
  done;
  m

let apportion fractions ~total = apportion fractions total

let approximate ~max_total fractions =
  let k = Array.length fractions in
  if k = 0 then invalid_arg "Ratio.approximate: empty fractions";
  if k > max_total then invalid_arg "Ratio.approximate: more next hops than max_total";
  Array.iter
    (fun f -> if f < 0. then invalid_arg "Ratio.approximate: negative fraction")
    fractions;
  let sum = Array.fold_left ( +. ) 0. fractions in
  if abs_float (sum -. 1.) > 1e-6 then
    invalid_arg "Ratio.approximate: fractions must sum to 1";
  let best = ref (apportion fractions ~total:k) in
  let best_err = ref (max_error fractions !best) in
  for total = k + 1 to max_total do
    let candidate = apportion fractions ~total in
    let err = max_error fractions candidate in
    if err < !best_err -. 1e-12 then begin
      best := candidate;
      best_err := err
    end
  done;
  !best
