lib/kit/pool.mli:
