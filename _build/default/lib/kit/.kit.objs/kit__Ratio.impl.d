lib/kit/ratio.ml: Array
