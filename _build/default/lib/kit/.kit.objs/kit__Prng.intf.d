lib/kit/prng.mli:
