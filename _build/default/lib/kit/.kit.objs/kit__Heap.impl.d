lib/kit/heap.ml: Array
