lib/kit/timeseries.ml: Buffer Format List Printf Stats
