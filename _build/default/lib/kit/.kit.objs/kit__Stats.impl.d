lib/kit/stats.ml: List
