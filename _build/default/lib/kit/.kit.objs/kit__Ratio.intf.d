lib/kit/ratio.mli:
