lib/kit/timeseries.mli: Format
