lib/kit/pool.ml: Array Atomic Domain List Printexc
