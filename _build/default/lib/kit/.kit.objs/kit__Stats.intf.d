lib/kit/stats.mli:
