lib/kit/heap.mli:
