lib/kit/prng.ml: Array Int64
