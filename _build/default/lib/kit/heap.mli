(** Mutable binary min-heap keyed by float priorities.

    Used by Dijkstra ([Netgraph.Dijkstra]) and the discrete event queue
    ([Netsim.Events]). Duplicate insertions of the same element are
    allowed; stale entries are the caller's concern (lazy deletion). *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val size : 'a t -> int
(** Number of stored entries (including any stale duplicates). *)

val push : 'a t -> priority:float -> 'a -> unit

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority entry, if any. Ties are broken
    arbitrarily but deterministically. *)

val peek : 'a t -> (float * 'a) option
