type t = {
  name : string;
  mutable rev_samples : (float * float) list;
  mutable last_time : float;
  mutable count : int;
}

let create ~name = { name; rev_samples = []; last_time = neg_infinity; count = 0 }

let name t = t.name

let add t ~time value =
  if time < t.last_time then invalid_arg "Timeseries.add: non-monotonic time";
  t.rev_samples <- (time, value) :: t.rev_samples;
  t.last_time <- time;
  t.count <- t.count + 1

let samples t = List.rev t.rev_samples

let length t = t.count

let value_at t time =
  (* rev_samples is newest-first: the first sample at or before [time]. *)
  let rec find = function
    | [] -> 0.
    | (sample_time, value) :: rest ->
      if sample_time <= time then value else find rest
  in
  find t.rev_samples

let peak t = List.fold_left (fun acc (_, v) -> max acc v) 0. t.rev_samples

let window_mean t ~from ~until =
  let in_window =
    List.filter_map
      (fun (time, v) -> if time >= from && time < until then Some v else None)
      t.rev_samples
  in
  Stats.mean in_window

let to_csv ?(step = 1.0) series =
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer "time";
  List.iter
    (fun t ->
      Buffer.add_char buffer ',';
      Buffer.add_string buffer t.name)
    series;
  Buffer.add_char buffer '\n';
  let horizon = List.fold_left (fun acc t -> max acc t.last_time) 0. series in
  let steps = int_of_float (horizon /. step) in
  for i = 0 to steps do
    let time = float_of_int i *. step in
    Buffer.add_string buffer (Printf.sprintf "%g" time);
    List.iter
      (fun t ->
        Buffer.add_string buffer (Printf.sprintf ",%g" (value_at t time)))
      series;
    Buffer.add_char buffer '\n'
  done;
  Buffer.contents buffer

let pp_rows ?(step = 1.0) fmt series =
  let horizon =
    List.fold_left (fun acc t -> max acc t.last_time) 0. series
  in
  Format.fprintf fmt "%10s" "time[s]";
  List.iter (fun t -> Format.fprintf fmt " %14s" t.name) series;
  Format.pp_print_newline fmt ();
  let steps = int_of_float (horizon /. step) in
  for i = 0 to steps do
    let time = float_of_int i *. step in
    Format.fprintf fmt "%10.1f" time;
    List.iter (fun t -> Format.fprintf fmt " %14.0f" (value_at t time)) series;
    Format.pp_print_newline fmt ()
  done
