type 'a t = {
  mutable priorities : float array;
  mutable values : 'a array;
  mutable length : int;
}

let create () = { priorities = [||]; values = [||]; length = 0 }

let is_empty t = t.length = 0

let size t = t.length

let grow t value =
  let capacity = Array.length t.priorities in
  if t.length = capacity then begin
    let capacity' = max 16 (2 * capacity) in
    let priorities' = Array.make capacity' 0. in
    let values' = Array.make capacity' value in
    Array.blit t.priorities 0 priorities' 0 t.length;
    Array.blit t.values 0 values' 0 t.length;
    t.priorities <- priorities';
    t.values <- values'
  end

let swap t i j =
  let p = t.priorities.(i) in
  t.priorities.(i) <- t.priorities.(j);
  t.priorities.(j) <- p;
  let v = t.values.(i) in
  t.values.(i) <- t.values.(j);
  t.values.(j) <- v

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.priorities.(i) < t.priorities.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.length && t.priorities.(left) < t.priorities.(!smallest) then
    smallest := left;
  if right < t.length && t.priorities.(right) < t.priorities.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ~priority value =
  grow t value;
  t.priorities.(t.length) <- priority;
  t.values.(t.length) <- value;
  t.length <- t.length + 1;
  sift_up t (t.length - 1)

let pop t =
  if t.length = 0 then None
  else begin
    let priority = t.priorities.(0) and value = t.values.(0) in
    t.length <- t.length - 1;
    if t.length > 0 then begin
      t.priorities.(0) <- t.priorities.(t.length);
      t.values.(0) <- t.values.(t.length);
      sift_down t 0
    end;
    Some (priority, value)
  end

let peek t = if t.length = 0 then None else Some (t.priorities.(0), t.values.(0))

(* Monomorphic int-priority / int-payload variant. Same lazy-deletion
   contract as the polymorphic heap, but priorities and values live in
   unboxed int arrays: no float boxing, no polymorphic compare. This is
   the heap Dijkstra runs on. *)
module Int = struct
  type t = {
    mutable priorities : int array;
    mutable values : int array;
    mutable length : int;
  }

  let create ?(capacity = 0) () =
    let capacity = max 0 capacity in
    {
      priorities = Array.make capacity 0;
      values = Array.make capacity 0;
      length = 0;
    }

  let is_empty t = t.length = 0

  let size t = t.length

  let clear t = t.length <- 0

  let grow t =
    let capacity = Array.length t.priorities in
    if t.length = capacity then begin
      let capacity' = max 16 (2 * capacity) in
      let priorities' = Array.make capacity' 0 in
      let values' = Array.make capacity' 0 in
      Array.blit t.priorities 0 priorities' 0 t.length;
      Array.blit t.values 0 values' 0 t.length;
      t.priorities <- priorities';
      t.values <- values'
    end

  let swap t i j =
    let p = t.priorities.(i) in
    t.priorities.(i) <- t.priorities.(j);
    t.priorities.(j) <- p;
    let v = t.values.(i) in
    t.values.(i) <- t.values.(j);
    t.values.(j) <- v

  let rec sift_up t i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if t.priorities.(i) < t.priorities.(parent) then begin
        swap t i parent;
        sift_up t parent
      end
    end

  let rec sift_down t i =
    let left = (2 * i) + 1 and right = (2 * i) + 2 in
    let smallest = ref i in
    if left < t.length && t.priorities.(left) < t.priorities.(!smallest) then
      smallest := left;
    if right < t.length && t.priorities.(right) < t.priorities.(!smallest) then
      smallest := right;
    if !smallest <> i then begin
      swap t i !smallest;
      sift_down t !smallest
    end

  let push t ~priority value =
    grow t;
    t.priorities.(t.length) <- priority;
    t.values.(t.length) <- value;
    t.length <- t.length + 1;
    sift_up t (t.length - 1)

  let pop t =
    if t.length = 0 then None
    else begin
      let priority = t.priorities.(0) and value = t.values.(0) in
      t.length <- t.length - 1;
      if t.length > 0 then begin
        t.priorities.(0) <- t.priorities.(t.length);
        t.values.(0) <- t.values.(t.length);
        sift_down t 0
      end;
      Some (priority, value)
    end

  let peek t =
    if t.length = 0 then None else Some (t.priorities.(0), t.values.(0))
end
