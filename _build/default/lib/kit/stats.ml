let total = List.fold_left ( +. ) 0.

let mean = function
  | [] -> 0.
  | xs -> total xs /. float_of_int (List.length xs)

let variance = function
  | [] | [ _ ] -> 0.
  | xs ->
    let m = mean xs in
    let squares = List.map (fun x -> (x -. m) *. (x -. m)) xs in
    total squares /. float_of_int (List.length xs)

let stddev xs = sqrt (variance xs)

let percentile p = function
  | [] -> invalid_arg "Stats.percentile: empty list"
  | xs ->
    let sorted = List.sort compare xs in
    let n = List.length sorted in
    let rank =
      int_of_float (ceil (p /. 100. *. float_of_int n)) - 1
    in
    let rank = max 0 (min (n - 1) rank) in
    List.nth sorted rank

let minimum = function
  | [] -> invalid_arg "Stats.minimum: empty list"
  | x :: xs -> List.fold_left min x xs

let maximum = function
  | [] -> invalid_arg "Stats.maximum: empty list"
  | x :: xs -> List.fold_left max x xs

let ewma ~alpha previous sample =
  assert (alpha >= 0. && alpha <= 1.);
  (alpha *. sample) +. ((1. -. alpha) *. previous)
