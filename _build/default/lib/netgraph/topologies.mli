(** Topology builders used throughout the tests, examples and benchmarks.

    [demo] is the exact network of the paper's Fig. 1a; the others provide
    the parameterized families used by the scalability experiments
    (TSCALE, TOVH, TOPT in DESIGN.md). *)

type demo = {
  graph : Graph.t;
  a : Graph.node;
  b : Graph.node;
  r1 : Graph.node;
  r2 : Graph.node;
  r3 : Graph.node;
  r4 : Graph.node;
  c : Graph.node;
}

val demo : unit -> demo
(** The paper's Fig. 1a network: routers A, B, R1–R4, C with link weights
    A–B = 1, A–R1 = 2, B–R2 = 1, B–R3 = 1, R2–C = 1, R3–C = 2, R1–R4 = 1,
    R4–C = 2 (see DESIGN.md for the weight reconstruction). The blue
    destination prefix of the paper is attached at C by the IGP layer. *)

val line : n:int -> Graph.t
(** n >= 1 nodes "N0" ... in a chain, unit weights. *)

val ring : n:int -> Graph.t
(** n >= 3 nodes in a cycle, unit weights. *)

val grid : rows:int -> cols:int -> Graph.t
(** rows x cols mesh, unit weights; node names "Nr_c". *)

val random :
  Kit.Prng.t -> n:int -> extra_edges:int -> max_weight:int -> Graph.t
(** Connected random graph: a random spanning tree plus [extra_edges]
    uniformly random additional links, weights uniform in
    [\[1, max_weight\]]. Deterministic given the PRNG state. *)

val two_level :
  Kit.Prng.t -> core:int -> edge_per_core:int -> Graph.t
(** ISP-like two-level topology: a well-meshed core ring with chords, and
    [edge_per_core] stub "edge" routers attached to each core node —
    the kind of network the paper's ISP scenario targets. *)

val fat_tree : k:int -> Graph.t
(** A k-ary fat tree (k even, >= 2): (k/2)² core switches, k pods of k/2
    aggregation + k/2 edge switches, unit weights. Node names "core_i",
    "agg_p_i", "edge_p_i". The heavy path redundancy makes it a good
    stress case for ECMP-based splitting. *)
