type node = int

type t = {
  mutable names : string array;
  mutable out_adj : (node * int) list array; (* successor, weight *)
  mutable in_adj : (node * int) list array; (* predecessor, weight *)
  mutable count : int;
  mutable edge_count : int;
}

let create () =
  { names = [||]; out_adj = [||]; in_adj = [||]; count = 0; edge_count = 0 }

let copy t =
  {
    names = Array.copy t.names;
    out_adj = Array.copy t.out_adj;
    in_adj = Array.copy t.in_adj;
    count = t.count;
    edge_count = t.edge_count;
  }

let reverse t =
  {
    names = Array.copy t.names;
    out_adj = Array.copy t.in_adj;
    in_adj = Array.copy t.out_adj;
    count = t.count;
    edge_count = t.edge_count;
  }

let check_node t v =
  if v < 0 || v >= t.count then
    invalid_arg (Printf.sprintf "Graph: unknown node %d" v)

let add_node t ~name =
  let capacity = Array.length t.names in
  if t.count = capacity then begin
    let capacity' = max 8 (2 * capacity) in
    let names' = Array.make capacity' "" in
    let out' = Array.make capacity' [] in
    let in' = Array.make capacity' [] in
    Array.blit t.names 0 names' 0 t.count;
    Array.blit t.out_adj 0 out' 0 t.count;
    Array.blit t.in_adj 0 in' 0 t.count;
    t.names <- names';
    t.out_adj <- out';
    t.in_adj <- in'
  end;
  let v = t.count in
  t.names.(v) <- name;
  t.out_adj.(v) <- [];
  t.in_adj.(v) <- [];
  t.count <- t.count + 1;
  v

let node_count t = t.count

let edge_count t = t.edge_count

let name t v =
  check_node t v;
  t.names.(v)

let find_node t target =
  let rec search v =
    if v >= t.count then None
    else if String.equal t.names.(v) target then Some v
    else search (v + 1)
  in
  search 0

let find_node_exn t target =
  match find_node t target with Some v -> v | None -> raise Not_found

let has_edge t u v =
  check_node t u;
  check_node t v;
  List.mem_assoc v t.out_adj.(u)

let add_edge t u v ~weight =
  check_node t u;
  check_node t v;
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  if weight <= 0 then invalid_arg "Graph.add_edge: weight must be positive";
  if List.mem_assoc v t.out_adj.(u) then begin
    t.out_adj.(u) <- List.map (fun (w, c) -> if w = v then (w, weight) else (w, c)) t.out_adj.(u);
    t.in_adj.(v) <- List.map (fun (w, c) -> if w = u then (w, weight) else (w, c)) t.in_adj.(v)
  end
  else begin
    t.out_adj.(u) <- t.out_adj.(u) @ [ (v, weight) ];
    t.in_adj.(v) <- t.in_adj.(v) @ [ (u, weight) ];
    t.edge_count <- t.edge_count + 1
  end

let add_link t u v ~weight =
  add_edge t u v ~weight;
  add_edge t v u ~weight

let remove_edge t u v =
  check_node t u;
  check_node t v;
  if List.mem_assoc v t.out_adj.(u) then begin
    t.out_adj.(u) <- List.remove_assoc v t.out_adj.(u);
    t.in_adj.(v) <- List.remove_assoc u t.in_adj.(v);
    t.edge_count <- t.edge_count - 1
  end

let weight t u v =
  check_node t u;
  check_node t v;
  List.assoc_opt v t.out_adj.(u)

let weight_exn t u v =
  match weight t u v with Some w -> w | None -> raise Not_found

let set_weight t u v ~weight =
  if weight <= 0 then invalid_arg "Graph.set_weight: weight must be positive";
  if not (has_edge t u v) then raise Not_found;
  add_edge t u v ~weight

let succ t v =
  check_node t v;
  t.out_adj.(v)

let pred t v =
  check_node t v;
  t.in_adj.(v)

let nodes t = List.init t.count Fun.id

let edges t =
  List.concat_map (fun u -> List.map (fun (v, w) -> (u, v, w)) t.out_adj.(u)) (nodes t)

let iter_succ t v f =
  check_node t v;
  List.iter (fun (u, w) -> f u w) t.out_adj.(v)

let fold_edges t ~init ~f =
  List.fold_left (fun acc (u, v, w) -> f acc u v w) init (edges t)

let pp fmt t =
  List.iter
    (fun (u, v, w) ->
      Format.fprintf fmt "%s -> %s [%d]@." t.names.(u) t.names.(v) w)
    (edges t)
