(** Real-world research topologies.

    Hand-encoded approximations of classic backbone networks, with
    weights in small integer latency classes (1 = metro, 2 = regional,
    3 = cross-country legs). Used by the extended benchmarks so the
    scaling and optimality experiments run on recognizable networks
    rather than only synthetic ones. *)

type entry = {
  name : string;
  graph : Graph.t;
  description : string;
}

val abilene : unit -> entry
(** Abilene / Internet2 (11 PoPs, 14 links). *)

val nsfnet : unit -> entry
(** NSFNET T1 backbone, 1991 (14 nodes, 21 links). *)

val geant : unit -> entry
(** GEANT-like pan-European research network (22 nodes, 36 links),
    simplified from the public 2004 map. *)

val all : unit -> entry list

val find : string -> entry option
(** Case-insensitive lookup by name. *)
