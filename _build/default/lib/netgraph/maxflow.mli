(** Maximum flow (Edmonds–Karp) on float capacities.

    Used by the TE library to upper-bound what any routing scheme can
    carry between a source and a destination, and in tests as an oracle
    against which multipath routing is checked. *)

type capacities = (Graph.node * Graph.node, float) Hashtbl.t
(** Capacity per directed edge; edges absent from the table have
    capacity 0. *)

val max_flow :
  Graph.t -> capacities -> source:Graph.node -> sink:Graph.node -> float
(** Value of the maximum flow. Requires non-negative capacities;
    0. when source = sink or the sink is unreachable. *)

val max_flow_with_assignment :
  Graph.t ->
  capacities ->
  source:Graph.node ->
  sink:Graph.node ->
  float * (Graph.node * Graph.node, float) Hashtbl.t
(** As [max_flow], also returning the per-edge flow assignment. *)
