type entry = { name : string; graph : Graph.t; description : string }

(* Build a graph from city names and weighted links. *)
let build nodes links =
  let g = Graph.create () in
  let ids = List.map (fun name -> (name, Graph.add_node g ~name)) nodes in
  let id name =
    match List.assoc_opt name ids with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Zoo: unknown node %s" name)
  in
  List.iter (fun (a, b, weight) -> Graph.add_link g (id a) (id b) ~weight) links;
  g

let abilene () =
  let nodes =
    [
      "Seattle"; "Sunnyvale"; "LosAngeles"; "Denver"; "KansasCity"; "Houston";
      "Chicago"; "Indianapolis"; "Atlanta"; "WashingtonDC"; "NewYork";
    ]
  in
  let links =
    [
      ("Seattle", "Sunnyvale", 2);
      ("Seattle", "Denver", 3);
      ("Sunnyvale", "LosAngeles", 1);
      ("Sunnyvale", "Denver", 2);
      ("LosAngeles", "Houston", 3);
      ("Denver", "KansasCity", 2);
      ("KansasCity", "Houston", 2);
      ("KansasCity", "Indianapolis", 1);
      ("Houston", "Atlanta", 2);
      ("Chicago", "Indianapolis", 1);
      ("Chicago", "NewYork", 2);
      ("Indianapolis", "Atlanta", 2);
      ("Atlanta", "WashingtonDC", 2);
      ("WashingtonDC", "NewYork", 1);
    ]
  in
  {
    name = "Abilene";
    graph = build nodes links;
    description = "Internet2 Abilene backbone: 11 PoPs, 14 links";
  }

let nsfnet () =
  let nodes =
    [
      "Seattle"; "PaloAlto"; "SanDiego"; "SaltLake"; "Boulder"; "Lincoln";
      "Champaign"; "AnnArbor"; "Pittsburgh"; "Ithaca"; "CollegePark";
      "Atlanta"; "Houston"; "Princeton";
    ]
  in
  let links =
    [
      ("Seattle", "PaloAlto", 2);
      ("Seattle", "SaltLake", 2);
      ("Seattle", "Champaign", 4);
      ("PaloAlto", "SanDiego", 1);
      ("PaloAlto", "SaltLake", 2);
      ("SanDiego", "Houston", 3);
      ("SaltLake", "Boulder", 1);
      ("SaltLake", "AnnArbor", 3);
      ("Boulder", "Lincoln", 1);
      ("Boulder", "Houston", 2);
      ("Lincoln", "Champaign", 1);
      ("Champaign", "Pittsburgh", 1);
      ("AnnArbor", "Ithaca", 1);
      ("AnnArbor", "Princeton", 2);
      ("Pittsburgh", "Ithaca", 1);
      ("Pittsburgh", "Atlanta", 2);
      ("Ithaca", "CollegePark", 1);
      ("CollegePark", "Princeton", 1);
      ("CollegePark", "Atlanta", 2);
      ("Atlanta", "Houston", 2);
      ("Houston", "Princeton", 4);
    ]
  in
  {
    name = "NSFNET";
    graph = build nodes links;
    description = "NSFNET T1 backbone (1991): 14 nodes, 21 links";
  }

let geant () =
  let nodes =
    [
      "Lisbon"; "Madrid"; "Paris"; "London"; "Dublin"; "Brussels"; "Amsterdam";
      "Luxembourg"; "Geneva"; "Frankfurt"; "Milan"; "Rome"; "Zurich"; "Vienna";
      "Prague"; "Berlin"; "Copenhagen"; "Stockholm"; "Warsaw"; "Budapest";
      "Zagreb"; "Athens";
    ]
  in
  let links =
    [
      ("Lisbon", "Madrid", 1);
      ("Lisbon", "London", 3);
      ("Madrid", "Paris", 2);
      ("Madrid", "Milan", 3);
      ("Paris", "London", 1);
      ("Paris", "Brussels", 1);
      ("Paris", "Geneva", 1);
      ("London", "Dublin", 1);
      ("London", "Amsterdam", 1);
      ("Dublin", "Amsterdam", 2);
      ("Brussels", "Luxembourg", 1);
      ("Amsterdam", "Frankfurt", 1);
      ("Amsterdam", "Copenhagen", 2);
      ("Luxembourg", "Frankfurt", 1);
      ("Geneva", "Zurich", 1);
      ("Geneva", "Milan", 1);
      ("Frankfurt", "Zurich", 1);
      ("Frankfurt", "Berlin", 1);
      ("Frankfurt", "Prague", 1);
      ("Milan", "Rome", 1);
      ("Milan", "Zurich", 1);
      ("Rome", "Athens", 3);
      ("Zurich", "Vienna", 2);
      ("Vienna", "Prague", 1);
      ("Vienna", "Budapest", 1);
      ("Vienna", "Zagreb", 1);
      ("Prague", "Berlin", 1);
      ("Berlin", "Copenhagen", 1);
      ("Berlin", "Warsaw", 2);
      ("Copenhagen", "Stockholm", 1);
      ("Stockholm", "Warsaw", 2);
      ("Warsaw", "Budapest", 2);
      ("Budapest", "Zagreb", 1);
      ("Zagreb", "Athens", 2);
      ("Budapest", "Athens", 3);
      ("Vienna", "Frankfurt", 2);
    ]
  in
  {
    name = "GEANT";
    graph = build nodes links;
    description = "GEANT-like pan-European research network: 22 nodes, 36 links";
  }

let all () = [ abilene (); nsfnet (); geant () ]

let find name =
  let lower = String.lowercase_ascii name in
  List.find_opt (fun e -> String.lowercase_ascii e.name = lower) (all ())
