(** Graphviz DOT export, for eyeballing topologies:
    [fibbingctl topo --dot | dot -Tpng -o topo.png]. *)

val of_graph :
  ?highlight:(Graph.node * Graph.node) list ->
  ?name:string ->
  Graph.t ->
  string
(** Symmetric edge pairs collapse to one undirected edge labelled with
    the weight; asymmetric edges are drawn directed with their own
    labels. [highlight]ed links (either direction) are drawn bold red —
    used for congested links. [name] is the graph's DOT identifier
    (default "topology"). *)
