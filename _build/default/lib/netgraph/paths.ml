type path = Graph.node list

let cost g = function
  | [] -> invalid_arg "Paths.cost: empty path"
  | first :: rest ->
    let total, _ =
      List.fold_left
        (fun (acc, u) v -> (acc + Graph.weight_exn g u v, v))
        (0, first) rest
    in
    total

let is_valid g = function
  | [] -> false
  | first :: rest ->
    let ok, _ =
      List.fold_left
        (fun (ok, u) v -> (ok && Graph.has_edge g u v, v))
        (true, first) rest
    in
    ok

let all_shortest ?(limit = 1024) g ~source ~target =
  if source = target then [ [ source ] ]
  else begin
    let r = Dijkstra.run g ~source in
    if not (Dijkstra.reachable r target) then []
    else begin
      (* Walk the predecessor DAG backwards from the target; each branch
         is a distinct shortest path. *)
      let results = ref [] and count = ref 0 in
      let rec expand v suffix =
        if !count < limit then begin
          if v = source then begin
            results := (source :: suffix) :: !results;
            incr count
          end
          else
            List.iter
              (fun p -> expand p (v :: suffix))
              (List.sort compare (Dijkstra.predecessors r v))
        end
      in
      expand target [];
      List.sort compare !results
    end
  end

(* One shortest path (lexicographically smallest among equal-cost ones),
   or None. *)
let shortest_one g ~source ~target =
  match all_shortest ~limit:1 g ~source ~target with
  | [] -> []
  | p :: _ -> p

let rec take_prefix n = function
  | [] -> []
  | x :: rest -> if n = 0 then [] else x :: take_prefix (n - 1) rest

let k_shortest g ~k ~source ~target =
  if k <= 0 then []
  else begin
    match shortest_one g ~source ~target with
    | [] -> []
    | first ->
      let accepted = ref [ first ] in
      let candidates : (int * path) list ref = ref [] in
      let add_candidate p =
        if not (List.exists (fun (_, q) -> q = p) !candidates)
           && not (List.mem p !accepted)
        then candidates := (cost g p, p) :: !candidates
      in
      let rec iterate () =
        if List.length !accepted >= k then ()
        else begin
          (* Spur from the most recently accepted path. *)
          let previous = List.nth !accepted (List.length !accepted - 1) in
          let len = List.length previous in
          (* Spur from every node of the last accepted path. *)
          for i = 0 to len - 2 do
            let root = take_prefix (i + 1) previous in
            let spur = List.nth previous i in
            let g' = Graph.copy g in
            (* Remove edges used by accepted paths sharing this root. *)
            List.iter
              (fun p ->
                if take_prefix (i + 1) p = root && List.length p > i + 1 then
                  Graph.remove_edge g' (List.nth p i) (List.nth p (i + 1)))
              !accepted;
            (* Remove root nodes (except the spur) to keep paths loopless. *)
            List.iter
              (fun v ->
                if v <> spur then begin
                  List.iter (fun (u, _) -> Graph.remove_edge g' v u) (Graph.succ g' v);
                  List.iter (fun (u, _) -> Graph.remove_edge g' u v) (Graph.pred g' v)
                end)
              (take_prefix i previous);
            match shortest_one g' ~source:spur ~target with
            | [] -> ()
            | spur_path ->
              let full = take_prefix i previous @ spur_path in
              if is_valid g full then add_candidate full
          done;
          match List.sort compare !candidates with
          | [] -> ()
          | (_, best) :: rest ->
            candidates := rest;
            accepted := !accepted @ [ best ];
            iterate ()
        end
      in
      iterate ();
      take_prefix k !accepted
  end

let pp g fmt p =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "-")
    (fun fmt v -> Format.pp_print_string fmt (Graph.name g v))
    fmt p

let to_string g p = Format.asprintf "%a" (pp g) p
