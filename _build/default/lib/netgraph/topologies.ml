type demo = {
  graph : Graph.t;
  a : Graph.node;
  b : Graph.node;
  r1 : Graph.node;
  r2 : Graph.node;
  r3 : Graph.node;
  r4 : Graph.node;
  c : Graph.node;
}

let demo () =
  let graph = Graph.create () in
  let a = Graph.add_node graph ~name:"A" in
  let b = Graph.add_node graph ~name:"B" in
  let r1 = Graph.add_node graph ~name:"R1" in
  let r2 = Graph.add_node graph ~name:"R2" in
  let r3 = Graph.add_node graph ~name:"R3" in
  let r4 = Graph.add_node graph ~name:"R4" in
  let c = Graph.add_node graph ~name:"C" in
  Graph.add_link graph a b ~weight:1;
  Graph.add_link graph a r1 ~weight:2;
  Graph.add_link graph b r2 ~weight:1;
  Graph.add_link graph b r3 ~weight:1;
  Graph.add_link graph r2 c ~weight:1;
  Graph.add_link graph r3 c ~weight:2;
  Graph.add_link graph r1 r4 ~weight:1;
  Graph.add_link graph r4 c ~weight:2;
  { graph; a; b; r1; r2; r3; r4; c }

let line ~n =
  if n < 1 then invalid_arg "Topologies.line: n must be >= 1";
  let g = Graph.create () in
  let nodes = Array.init n (fun i -> Graph.add_node g ~name:(Printf.sprintf "N%d" i)) in
  for i = 0 to n - 2 do
    Graph.add_link g nodes.(i) nodes.(i + 1) ~weight:1
  done;
  g

let ring ~n =
  if n < 3 then invalid_arg "Topologies.ring: n must be >= 3";
  let g = Graph.create () in
  let nodes = Array.init n (fun i -> Graph.add_node g ~name:(Printf.sprintf "N%d" i)) in
  for i = 0 to n - 1 do
    Graph.add_link g nodes.(i) nodes.((i + 1) mod n) ~weight:1
  done;
  g

let grid ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Topologies.grid: empty grid";
  let g = Graph.create () in
  let nodes =
    Array.init rows (fun r ->
        Array.init cols (fun c ->
            Graph.add_node g ~name:(Printf.sprintf "N%d_%d" r c)))
  in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then Graph.add_link g nodes.(r).(c) nodes.(r).(c + 1) ~weight:1;
      if r + 1 < rows then Graph.add_link g nodes.(r).(c) nodes.(r + 1).(c) ~weight:1
    done
  done;
  g

let random prng ~n ~extra_edges ~max_weight =
  if n < 2 then invalid_arg "Topologies.random: n must be >= 2";
  if max_weight < 1 then invalid_arg "Topologies.random: max_weight must be >= 1";
  let g = Graph.create () in
  let nodes = Array.init n (fun i -> Graph.add_node g ~name:(Printf.sprintf "N%d" i)) in
  let weight () = 1 + Kit.Prng.int prng max_weight in
  (* Random spanning tree: attach node i to a random previous node. *)
  for i = 1 to n - 1 do
    let j = Kit.Prng.int prng i in
    Graph.add_link g nodes.(i) nodes.(j) ~weight:(weight ())
  done;
  let added = ref 0 and attempts = ref 0 in
  while !added < extra_edges && !attempts < extra_edges * 20 do
    incr attempts;
    let u = Kit.Prng.int prng n and v = Kit.Prng.int prng n in
    if u <> v && not (Graph.has_edge g nodes.(u) nodes.(v)) then begin
      Graph.add_link g nodes.(u) nodes.(v) ~weight:(weight ());
      incr added
    end
  done;
  g

let fat_tree ~k =
  if k < 2 || k mod 2 <> 0 then invalid_arg "Topologies.fat_tree: k must be even, >= 2";
  let g = Graph.create () in
  let half = k / 2 in
  let cores =
    Array.init (half * half) (fun i ->
        Graph.add_node g ~name:(Printf.sprintf "core_%d" i))
  in
  for pod = 0 to k - 1 do
    let aggs =
      Array.init half (fun i ->
          Graph.add_node g ~name:(Printf.sprintf "agg_%d_%d" pod i))
    in
    let edges =
      Array.init half (fun i ->
          Graph.add_node g ~name:(Printf.sprintf "edge_%d_%d" pod i))
    in
    (* Full bipartite mesh inside the pod. *)
    Array.iter
      (fun agg -> Array.iter (fun edge -> Graph.add_link g agg edge ~weight:1) edges)
      aggs;
    (* Aggregation switch i uplinks to core group i. *)
    Array.iteri
      (fun i agg ->
        for j = 0 to half - 1 do
          Graph.add_link g agg cores.((i * half) + j) ~weight:1
        done)
      aggs
  done;
  g

let two_level prng ~core ~edge_per_core =
  if core < 3 then invalid_arg "Topologies.two_level: core must be >= 3";
  if edge_per_core < 0 then invalid_arg "Topologies.two_level: negative edge count";
  let g = Graph.create () in
  let cores =
    Array.init core (fun i -> Graph.add_node g ~name:(Printf.sprintf "C%d" i))
  in
  (* Core ring with chords for path diversity. *)
  for i = 0 to core - 1 do
    Graph.add_link g cores.(i) cores.((i + 1) mod core) ~weight:1
  done;
  for i = 0 to core - 1 do
    let j = (i + 2 + Kit.Prng.int prng (max 1 (core - 3))) mod core in
    if j <> i && not (Graph.has_edge g cores.(i) cores.(j)) then
      Graph.add_link g cores.(i) cores.(j) ~weight:2
  done;
  for i = 0 to core - 1 do
    for k = 0 to edge_per_core - 1 do
      let e = Graph.add_node g ~name:(Printf.sprintf "E%d_%d" i k) in
      Graph.add_link g e cores.(i) ~weight:1;
      (* Dual-homed edge routers for redundancy. *)
      Graph.add_link g e cores.((i + 1) mod core) ~weight:2
    done
  done;
  g
