let escape name =
  String.map (fun c -> if c = '-' || c = ' ' || c = '.' then '_' else c) name

let of_graph ?(highlight = []) ?(name = "topology") g =
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer (Printf.sprintf "graph %s {\n" (escape name));
  Buffer.add_string buffer "  node [shape=circle fontsize=11];\n";
  List.iter
    (fun v ->
      Buffer.add_string buffer
        (Printf.sprintf "  %s [label=\"%s\"];\n" (escape (Graph.name g v))
           (Graph.name g v)))
    (Graph.nodes g);
  let highlighted u v =
    List.mem (u, v) highlight || List.mem (v, u) highlight
  in
  List.iter
    (fun (u, v, w) ->
      (* Emit each symmetric pair once; an asymmetric edge (different or
         missing reverse weight) is emitted from both sides as a
         directed half. *)
      let reverse = Graph.weight g v u in
      let symmetric = reverse = Some w in
      if (symmetric && u < v) || not symmetric then begin
        let attrs =
          (Printf.sprintf "label=\"%d\"" w
          :: (if highlighted u v then [ "color=red"; "penwidth=2.5" ] else []))
          @ (if symmetric then [] else [ "dir=forward" ])
        in
        Buffer.add_string buffer
          (Printf.sprintf "  %s -- %s [%s];\n"
             (escape (Graph.name g u))
             (escape (Graph.name g v))
             (String.concat " " attrs))
      end)
    (Graph.edges g);
  Buffer.add_string buffer "}\n";
  Buffer.contents buffer
