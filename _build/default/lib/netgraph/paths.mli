(** Explicit path manipulation on top of the shortest-path DAG. *)

type path = Graph.node list
(** A path as its node sequence, source first. Always non-empty. *)

val cost : Graph.t -> path -> int
(** Sum of edge weights along the path. Raises [Not_found] if a hop is not
    an edge of the graph; [0] for a single-node path. *)

val is_valid : Graph.t -> path -> bool
(** The path is non-empty and every hop is an existing edge. *)

val all_shortest : ?limit:int -> Graph.t -> source:Graph.node -> target:Graph.node -> path list
(** Enumerate all distinct shortest paths (at most [limit], default 1024),
    lexicographically by node sequence. Empty if the target is
    unreachable; [[source]] if target = source. *)

val k_shortest : Graph.t -> k:int -> source:Graph.node -> target:Graph.node -> path list
(** Yen's algorithm: the [k] loopless shortest paths in non-decreasing
    cost order (fewer if the graph has fewer distinct paths). Used by the
    MPLS baseline to pre-provision tunnels. *)

val pp : Graph.t -> Format.formatter -> path -> unit
(** Renders "A-B-R2-C". *)

val to_string : Graph.t -> path -> string
