lib/netgraph/dijkstra.mli: Graph Seq
