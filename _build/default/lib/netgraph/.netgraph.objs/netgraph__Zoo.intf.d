lib/netgraph/zoo.mli: Graph
