lib/netgraph/paths.mli: Format Graph
