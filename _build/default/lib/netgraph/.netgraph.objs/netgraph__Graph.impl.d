lib/netgraph/graph.ml: Array Format Fun List Printf String
