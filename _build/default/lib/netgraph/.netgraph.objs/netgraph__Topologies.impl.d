lib/netgraph/topologies.ml: Array Graph Kit Printf
