lib/netgraph/paths.ml: Dijkstra Format Graph List
