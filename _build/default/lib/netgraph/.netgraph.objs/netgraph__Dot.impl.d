lib/netgraph/dot.ml: Buffer Graph List Printf String
