lib/netgraph/dot.mli: Graph
