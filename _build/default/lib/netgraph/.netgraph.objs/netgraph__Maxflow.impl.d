lib/netgraph/maxflow.ml: Array Graph Hashtbl List Option Queue
