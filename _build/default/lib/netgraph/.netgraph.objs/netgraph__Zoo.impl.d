lib/netgraph/zoo.ml: Graph List Printf String
