lib/netgraph/maxflow.mli: Graph Hashtbl
