lib/netgraph/topologies.mli: Graph Kit
