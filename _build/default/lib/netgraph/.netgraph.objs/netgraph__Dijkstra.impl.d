lib/netgraph/dijkstra.ml: Array Fun Graph Hashtbl Kit List Seq
