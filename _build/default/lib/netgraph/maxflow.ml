type capacities = (Graph.node * Graph.node, float) Hashtbl.t

let epsilon = 1e-9

(* Residual capacity of (u, v): capacity - flow + reverse flow. *)
let residual capacities flow u v =
  let cap = Option.value ~default:0. (Hashtbl.find_opt capacities (u, v)) in
  let fwd = Option.value ~default:0. (Hashtbl.find_opt flow (u, v)) in
  let back = Option.value ~default:0. (Hashtbl.find_opt flow (v, u)) in
  cap -. fwd +. back

(* BFS for a shortest augmenting path in the residual graph. Residual arcs
   exist along graph edges in both directions (forward capacity and flow
   cancellation). *)
let find_augmenting g capacities flow ~source ~sink =
  let n = Graph.node_count g in
  let parent = Array.make n (-1) in
  let visited = Array.make n false in
  visited.(source) <- true;
  let queue = Queue.create () in
  Queue.push source queue;
  let found = ref false in
  while (not !found) && not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    let consider v =
      if (not visited.(v)) && residual capacities flow u v > epsilon then begin
        visited.(v) <- true;
        parent.(v) <- u;
        if v = sink then found := true else Queue.push v queue
      end
    in
    Graph.iter_succ g u (fun v _ -> consider v);
    List.iter (fun (v, _) -> consider v) (Graph.pred g u)
  done;
  if not !found then None
  else begin
    let rec rebuild v acc = if v = source then v :: acc else rebuild parent.(v) (v :: acc) in
    Some (rebuild sink [])
  end

let max_flow_with_assignment g capacities ~source ~sink =
  Hashtbl.iter
    (fun _ c -> if c < 0. then invalid_arg "Maxflow: negative capacity")
    capacities;
  let flow : (Graph.node * Graph.node, float) Hashtbl.t = Hashtbl.create 64 in
  let value = ref 0. in
  if source <> sink then begin
    let rec augment () =
      match find_augmenting g capacities flow ~source ~sink with
      | None -> ()
      | Some path ->
        let rec bottleneck acc = function
          | u :: (v :: _ as rest) ->
            bottleneck (min acc (residual capacities flow u v)) rest
          | _ -> acc
        in
        let delta = bottleneck infinity path in
        let rec push = function
          | u :: (v :: _ as rest) ->
            (* Cancel reverse flow first, then add forward flow. *)
            let back = Option.value ~default:0. (Hashtbl.find_opt flow (v, u)) in
            let cancel = min back delta in
            Hashtbl.replace flow (v, u) (back -. cancel);
            let fwd = Option.value ~default:0. (Hashtbl.find_opt flow (u, v)) in
            Hashtbl.replace flow (u, v) (fwd +. delta -. cancel);
            push rest
          | _ -> ()
        in
        push path;
        value := !value +. delta;
        augment ()
    in
    augment ()
  end;
  Hashtbl.filter_map_inplace
    (fun _ f -> if f <= epsilon then None else Some f)
    flow;
  (!value, flow)

let max_flow g capacities ~source ~sink =
  fst (max_flow_with_assignment g capacities ~source ~sink)
