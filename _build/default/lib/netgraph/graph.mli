(** Mutable directed graph with integer IGP link weights.

    Nodes are dense integer identifiers handed out by [add_node]; each
    node carries a human-readable name (router names in the paper's
    figures: A, B, R1, ...). Edges are directed; [add_link] installs the
    two directions of a symmetric IGP adjacency at once. Parallel edges
    between the same pair are not supported ([add_edge] on an existing
    pair replaces its weight). *)

type t

type node = int

val create : unit -> t

val copy : t -> t
(** Deep copy; mutations on the copy do not affect the original. *)

val reverse : t -> t
(** A new graph with every edge direction flipped (same nodes and
    weights). Running Dijkstra from node [v] on the reverse graph yields
    the distances {i towards} [v] in the original. *)

val add_node : t -> name:string -> node
(** Returns the fresh node's identifier. Names need not be unique, but
    lookups by name ([find_node]) return the first match. *)

val node_count : t -> int

val edge_count : t -> int
(** Number of directed edges. *)

val name : t -> node -> string
(** Raises [Invalid_argument] on an unknown node. *)

val find_node : t -> string -> node option

val find_node_exn : t -> string -> node
(** Raises [Not_found] if no node has this name. *)

val add_edge : t -> node -> node -> weight:int -> unit
(** Directed edge; replaces the weight if the edge exists. Weights must be
    positive. Self-loops are rejected. *)

val add_link : t -> node -> node -> weight:int -> unit
(** Symmetric adjacency: both directions at the given weight. *)

val remove_edge : t -> node -> node -> unit
(** No-op if the edge does not exist. *)

val weight : t -> node -> node -> int option

val weight_exn : t -> node -> node -> int
(** Raises [Not_found] if the edge does not exist. *)

val set_weight : t -> node -> node -> weight:int -> unit
(** Raises [Not_found] if the edge does not exist. *)

val has_edge : t -> node -> node -> bool

val succ : t -> node -> (node * int) list
(** Outgoing neighbors with edge weights, in insertion order. *)

val pred : t -> node -> (node * int) list
(** Incoming neighbors with edge weights. *)

val nodes : t -> node list
(** All node identifiers in increasing order. *)

val edges : t -> (node * node * int) list
(** All directed edges [(u, v, weight)]. *)

val iter_succ : t -> node -> (node -> int -> unit) -> unit

val fold_edges : t -> init:'a -> f:('a -> node -> node -> int -> 'a) -> 'a

val pp : Format.formatter -> t -> unit
(** Debug rendering: one line per directed edge. *)
