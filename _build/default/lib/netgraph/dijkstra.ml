type result = {
  source : Graph.node;
  dist : int array; (* max_int encodes "unreachable" *)
  preds : Graph.node list array;
}

let unreachable = max_int

let run g ~source =
  let n = Graph.node_count g in
  let dist = Array.make n unreachable in
  let preds = Array.make n [] in
  let settled = Array.make n false in
  let heap = Kit.Heap.Int.create ~capacity:n () in
  dist.(source) <- 0;
  Kit.Heap.Int.push heap ~priority:0 source;
  let rec loop () =
    match Kit.Heap.Int.pop heap with
    | None -> ()
    | Some (_, u) ->
      if not settled.(u) then begin
        settled.(u) <- true;
        (* Each directed edge (u, v) is relaxed exactly once ([settled]
           guards re-expansion of u), so [u] can never already be in
           [preds.(v)] — no membership scan needed. *)
        Graph.iter_succ g u (fun v w ->
            let candidate = dist.(u) + w in
            if candidate < dist.(v) then begin
              dist.(v) <- candidate;
              preds.(v) <- [ u ];
              Kit.Heap.Int.push heap ~priority:candidate v
            end
            else if candidate = dist.(v) then preds.(v) <- u :: preds.(v));
        loop ()
      end
      else loop ()
  in
  loop ();
  { source; dist; preds }

let source r = r.source

let distance r v = if r.dist.(v) = unreachable then None else Some r.dist.(v)

let distance_exn r v =
  if r.dist.(v) = unreachable then raise Not_found else r.dist.(v)

let reachable r v = r.dist.(v) <> unreachable

let predecessors r v = if r.dist.(v) = unreachable then [] else r.preds.(v)

(* Nodes on the shortest-path DAG between source and target: reverse DFS
   from the target along predecessor sets. *)
let dag_nodes r ~target =
  if r.dist.(target) = unreachable then [||]
  else begin
    let marked = Array.make (Array.length r.dist) false in
    let rec visit v =
      if not marked.(v) then begin
        marked.(v) <- true;
        List.iter visit r.preds.(v)
      end
    in
    visit target;
    marked
  end

let first_hops g r ~target =
  if target = r.source || r.dist.(target) = unreachable then []
  else begin
    let marked = dag_nodes r ~target in
    let hops =
      List.filter_map
        (fun (v, w) ->
          if r.dist.(v) = w && marked.(v) then Some v else None)
        (Graph.succ g r.source)
    in
    List.sort_uniq compare hops
  end

let shortest_path_nodes r ~target =
  let marked = dag_nodes r ~target in
  if Array.length marked = 0 then []
  else
    List.filter (fun v -> marked.(v)) (List.init (Array.length marked) Fun.id)

let all_distances g pairs =
  let by_source = Hashtbl.create 16 in
  let cached source =
    match Hashtbl.find_opt by_source source with
    | Some r -> r
    | None ->
      let r = run g ~source in
      Hashtbl.add by_source source r;
      r
  in
  Seq.filter_map
    (fun (s, t) ->
      let r = cached s in
      match distance r t with None -> None | Some d -> Some (s, t, d))
    pairs
