(** Single-source shortest paths with full equal-cost multipath support.

    [run] computes, for every node, the distance from the source and the
    complete set of shortest-path predecessors, i.e. the ECMP DAG that a
    link-state router derives from its SPF computation. *)

type result

val run : Graph.t -> source:Graph.node -> result

val source : result -> Graph.node

val distance : result -> Graph.node -> int option
(** [None] when the node is unreachable from the source. *)

val distance_exn : result -> Graph.node -> int
(** Raises [Not_found] when unreachable. *)

val reachable : result -> Graph.node -> bool

val predecessors : result -> Graph.node -> Graph.node list
(** All shortest-path predecessors of the node (empty for the source and
    for unreachable nodes). Together these encode every shortest path. *)

val first_hops : Graph.t -> result -> target:Graph.node -> Graph.node list
(** Distinct first hops (neighbors of the source) over all shortest paths
    from the source to [target], in ascending node order. Empty when
    [target] is the source or unreachable. This is the ECMP next-hop set a
    router installs. *)

val shortest_path_nodes : result -> target:Graph.node -> Graph.node list
(** All nodes lying on at least one shortest path from the source to
    [target] (including both endpoints), ascending order. Empty when
    unreachable. *)

val all_distances : Graph.t -> (Graph.node * Graph.node) Seq.t -> (Graph.node * Graph.node * int) Seq.t
(** Batched distance queries grouped by source to avoid recomputing SPF;
    unreachable pairs are omitted. *)
